//! `llc-agent` — the node agent: instantiates its shard of the plant (a
//! `ClusterSim` behind a `SimAdapter`), connects to `llc-controld`,
//! streams one observation per module per window, and reconciles
//! whatever directives come back (latest epoch wins per actuator,
//! idempotent re-apply, wedged actuators detected by read-back and
//! reported in the heartbeat).
//!
//! ```text
//! llc-agent --connect 127.0.0.1:7700 --scenario faults \
//!           [--members N] [--buckets N] [--seed N] [--pace-ms MS]
//! ```
//!
//! The flags must match the controller's: both ends derive the whole
//! run (cluster, trace, fault schedule) from them, and the handshake
//! rejects mismatches. In paced mode (`--pace-ms > 0`) a dropped
//! connection is retried with backoff until the run completes.

use llc_net::scenario::{flag_value, Family, RunSpec};
use llc_net::{run_agent, AgentCore, SessionError, TcpLink};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: llc-agent --connect ADDR [--scenario closed-loop|faults] \
             [--members N] [--buckets N] [--seed N] [--pace-ms MS]"
        );
        return ExitCode::SUCCESS;
    }
    let connect = flag_value(&args, "--connect").unwrap_or_else(|| "127.0.0.1:7700".into());
    let family = match Family::parse(
        &flag_value(&args, "--scenario").unwrap_or_else(|| "closed-loop".into()),
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("llc-agent: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = RunSpec::defaults(family);
    if let Some(v) = flag_value(&args, "--members") {
        spec.members = v.parse().expect("--members takes an integer");
    }
    if let Some(v) = flag_value(&args, "--buckets") {
        spec.buckets = v.parse().expect("--buckets takes an integer");
    }
    if let Some(v) = flag_value(&args, "--seed") {
        spec.seed = v.parse().expect("--seed takes an integer");
    }
    let pace_ms: u64 = flag_value(&args, "--pace-ms")
        .map_or(0, |v| v.parse().expect("--pace-ms takes milliseconds"));
    let pace = (pace_ms > 0).then(|| Duration::from_millis(pace_ms));

    let (exp, trace) = spec.experiment_and_trace();
    let store = spec.store();
    let mut core =
        match AgentCore::new(spec.scenario_config().to_sim_config(), &exp, &trace, &store) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("llc-agent: cannot instantiate plant: {e}");
                return ExitCode::FAILURE;
            }
        };
    eprintln!(
        "llc-agent: plant up ({} modules, {} ticks); connecting to {connect}",
        core.members().len(),
        core.total_ticks(),
    );

    let mut attempts = 0u32;
    while !core.finished() {
        let stream = match TcpStream::connect(&connect) {
            Ok(s) => s,
            Err(e) => {
                attempts += 1;
                if attempts > 20 {
                    eprintln!("llc-agent: giving up on {connect}: {e}");
                    return ExitCode::FAILURE;
                }
                std::thread::sleep(Duration::from_millis(100 * u64::from(attempts.min(10))));
                continue;
            }
        };
        attempts = 0;
        let mut link = match TcpLink::new(stream) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("llc-agent: {e}");
                continue;
            }
        };
        match run_agent(&mut core, &mut link, pace) {
            Ok(metrics) => {
                let r = core.reconcile_report();
                eprintln!(
                    "llc-agent: run complete at tick {} — reconciler applied {}, \
                     superseded {}, duplicates {}; wedged events {}",
                    core.tick(),
                    r.applied,
                    r.superseded,
                    r.duplicates,
                    core.wedged_events(),
                );
                if let Some(m) = metrics {
                    let t = &m.transport;
                    eprintln!(
                        "llc-agent: controller metrics — {} ticks decided, {} directives; \
                         transport: {} late obs, {} lost module-windows, {} reconnects",
                        m.ticks_decided,
                        m.directives_emitted,
                        t.late_observations,
                        t.lost_observation_windows,
                        t.reconnects,
                    );
                }
                return ExitCode::SUCCESS;
            }
            Err(SessionError::Link(e)) if pace.is_some() && !core.finished() => {
                eprintln!(
                    "llc-agent: link lost at tick {} ({e}); reconnecting",
                    core.tick()
                );
            }
            Err(e) => {
                eprintln!("llc-agent: session failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
