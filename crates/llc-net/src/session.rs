//! Session loops: drive an [`AgentCore`] and a [`ControldCore`] against
//! each other over any [`FrameTransport`].
//!
//! Two pacing modes share one wire protocol:
//!
//! * **Lockstep** (`pace = None`) — the controller blocks until the
//!   agent's end-of-window heartbeat before deciding; the agent blocks
//!   on the controller's commit heartbeat before advancing the plant.
//!   Over a lossless ordered link this reproduces the in-process
//!   `Experiment::run` loop bit for bit (the golden equivalence test).
//! * **Paced** (`pace = Some(wall-clock per tick)`) — the controller
//!   holds each tick open until its wall deadline, then catches the
//!   plane up with [`ControldCore::advance_wall`], dark-filling members
//!   whose observations missed the window; the agent likewise commits
//!   at its deadline with whatever directives arrived. Losing frames
//!   degrades the loop, it does not stop it.
//!
//! Protocol per window `T`: agent sends one `Observation` frame per
//! module, then an agent `Heartbeat` ("all observations for `T` sent",
//! carrying the cumulative wedged-actuation count); the controller
//! decides, sends the `Directive` frames, then a controller `Heartbeat`
//! (the commit marker). After the last window the controller sends one
//! `Metrics` frame — the full [`MetricsSnapshot`] including the
//! transport section.

use crate::agent::AgentCore;
use crate::codec::{
    decode_heartbeat, decode_hello, decode_metrics, encode_directive, encode_heartbeat,
    encode_hello, encode_metrics, encode_observation, Hello, Role,
};
use crate::controld::ControldCore;
use crate::frame::{Frame, FrameKind, WireError};
use crate::link::{FrameTransport, LinkError};
use llc_cluster::{ClusterPolicy, MetricsSnapshot};
use llc_sim::SimError;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a session ended abnormally.
#[derive(Debug)]
pub enum SessionError {
    /// Transport failure.
    Link(LinkError),
    /// A frame refused to decode (lockstep mode treats this as fatal;
    /// paced mode drops the frame and continues).
    Wire(WireError),
    /// The peer broke the protocol (bad handshake, wrong role, silence
    /// where lockstep requires progress).
    Protocol(String),
    /// The plant rejected an actuation or arrival.
    Sim(SimError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Link(e) => write!(f, "link: {e}"),
            SessionError::Wire(e) => write!(f, "wire: {e}"),
            SessionError::Protocol(msg) => write!(f, "protocol: {msg}"),
            SessionError::Sim(e) => write!(f, "sim: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<LinkError> for SessionError {
    fn from(e: LinkError) -> Self {
        SessionError::Link(e)
    }
}

impl From<WireError> for SessionError {
    fn from(e: WireError) -> Self {
        SessionError::Wire(e)
    }
}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

/// Block until a `Hello` frame arrives (skipping nothing: anything else
/// before the handshake is a protocol error).
fn wait_for_hello<T: FrameTransport>(link: &mut T) -> Result<Hello, SessionError> {
    let frame = recv_blocking(link)?;
    if frame.kind != FrameKind::Hello {
        return Err(SessionError::Protocol(format!(
            "expected Hello, got {:?}",
            frame.kind
        )));
    }
    Ok(decode_hello(&frame.payload)?)
}

/// Blocking receive: a `None` from an infinite-timeout receive means
/// the transport cannot block (an in-memory pipe ran dry), which a
/// lockstep session treats as the peer going silent.
fn recv_blocking<T: FrameTransport>(link: &mut T) -> Result<Frame, SessionError> {
    link.recv(None)?
        .ok_or_else(|| SessionError::Protocol("peer went silent mid-lockstep".into()))
}

/// Run the controller side of a session to completion.
///
/// `pace = None` is lockstep; `Some(d)` holds each tick's window open
/// for `d` of wall clock. Returns nothing — the caller reads results
/// off the core ([`ControldCore::directives_log`],
/// [`ControldCore::metrics`]).
///
/// # Errors
///
/// [`SessionError`] on transport failure, handshake mismatch, or (in
/// lockstep mode) any undecodable frame.
pub fn serve_controller<P: ClusterPolicy, T: FrameTransport>(
    core: &mut ControldCore<P>,
    link: &mut T,
    pace: Option<Duration>,
) -> Result<(), SessionError> {
    link.send(FrameKind::Hello, encode_hello(&core.hello()))?;
    let hello = wait_for_hello(link)?;
    core.check_agent_hello(&hello)
        .map_err(SessionError::Protocol)?;

    match pace {
        None => serve_lockstep(core, link),
        Some(p) => serve_paced(core, link, p),
    }?;

    let metrics = core.metrics(&link.counters());
    link.send(FrameKind::Metrics, encode_metrics(&metrics))?;
    Ok(())
}

fn serve_lockstep<P: ClusterPolicy, T: FrameTransport>(
    core: &mut ControldCore<P>,
    link: &mut T,
) -> Result<(), SessionError> {
    while !core.finished() {
        let tick = core.next_tick();
        // Gather until the agent's heartbeat closes the window. TCP
        // ordering guarantees the observations it covers arrived first.
        loop {
            let frame = recv_blocking(link)?;
            if let crate::controld::CtrlEvent::AgentHeartbeat(hb) = core.handle_frame(&frame)? {
                if hb.tick >= tick {
                    break;
                }
            }
        }
        let (_report, directives) = core.decide_next();
        for d in &directives {
            link.send(FrameKind::Directive, encode_directive(d))?;
        }
        link.send(
            FrameKind::Heartbeat,
            encode_heartbeat(&core.commit_heartbeat(tick)),
        )?;
    }
    Ok(())
}

fn serve_paced<P: ClusterPolicy, T: FrameTransport>(
    core: &mut ControldCore<P>,
    link: &mut T,
    pace: Duration,
) -> Result<(), SessionError> {
    let start = Instant::now();
    while !core.finished() {
        let tick = core.next_tick();
        let deadline = start + pace.mul_f64((tick + 1) as f64);
        // Hold the window open until every module reported or the wall
        // deadline passes. Undecodable frames are dropped whole (and
        // counted by the core); the session keeps going.
        while !core.ready() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match link.recv(Some(deadline - now))? {
                Some(frame) => {
                    let _ = core.handle_frame(&frame);
                }
                None => break, // deadline
            }
        }
        // Catch the plane up. A window that closed early (every module
        // reported) is exactly one step. At the deadline, tick `t`'s
        // window ends at wall `(t+1)·pace`, so the due virtual time is
        // one window behind the wall: a controller stalled for several
        // paces decides several ticks here, each dark-filled.
        let elapsed = start.elapsed().as_secs_f64() / pace.as_secs_f64();
        let virtual_now = if core.ready() {
            tick as f64
        } else {
            (elapsed - 1.0).max(tick as f64)
        } * core.t_l0();
        for (_report, directives) in core.advance_wall(virtual_now) {
            for d in &directives {
                link.send(FrameKind::Directive, encode_directive(d))?;
            }
        }
        let decided = core.next_tick().saturating_sub(1);
        link.send(
            FrameKind::Heartbeat,
            encode_heartbeat(&core.commit_heartbeat(decided)),
        )?;
    }
    Ok(())
}

/// Run the agent side of a session to completion. Returns the
/// controller's final [`MetricsSnapshot`] if its `Metrics` frame
/// arrived.
///
/// # Errors
///
/// [`SessionError`] on transport failure, handshake mismatch, or (in
/// lockstep mode) any undecodable frame.
pub fn run_agent<T: FrameTransport>(
    core: &mut AgentCore<'_>,
    link: &mut T,
    pace: Option<Duration>,
) -> Result<Option<MetricsSnapshot>, SessionError> {
    link.send(FrameKind::Hello, encode_hello(&core.hello()))?;
    let hello = wait_for_hello(link)?;
    if hello.role != Role::Controller {
        return Err(SessionError::Protocol(format!(
            "peer announced role {:?}, expected Controller",
            hello.role
        )));
    }
    if hello.t_l0.to_bits() != core.hello().t_l0.to_bits()
        || hello.total_ticks != core.total_ticks()
    {
        return Err(SessionError::Protocol(format!(
            "run shape mismatch: controller ({} s, {} ticks), agent ({} s, {} ticks)",
            hello.t_l0,
            hello.total_ticks,
            core.hello().t_l0,
            core.total_ticks()
        )));
    }

    while !core.finished() {
        let tick = core.tick();
        for observation in core.observations() {
            link.send(FrameKind::Observation, encode_observation(&observation))?;
        }
        link.send(FrameKind::Heartbeat, encode_heartbeat(&core.heartbeat()))?;

        // Wait for the commit marker covering this tick; in paced mode
        // give up at the deadline and commit with whatever arrived.
        let deadline = pace.map(|p| Instant::now() + p.mul_f64(2.0));
        loop {
            let frame = match deadline {
                None => recv_blocking(link)?,
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break;
                    }
                    match link.recv(Some(d - now))? {
                        Some(frame) => frame,
                        None => break, // deadline
                    }
                }
            };
            match frame.kind {
                FrameKind::Directive => {
                    match crate::codec::decode_directive(&frame.payload) {
                        Ok(d) => core.stage(d),
                        Err(e) if pace.is_some() => {
                            // Paced: drop the frame whole, keep going.
                            let _ = e;
                        }
                        Err(e) => return Err(SessionError::Wire(e)),
                    }
                }
                FrameKind::Heartbeat => {
                    let hb = decode_heartbeat(&frame.payload)?;
                    if hb.role == Role::Controller && hb.tick >= tick {
                        break;
                    }
                }
                FrameKind::Hello | FrameKind::Metrics | FrameKind::Observation => {
                    if pace.is_none() {
                        return Err(SessionError::Protocol(format!(
                            "unexpected {:?} frame mid-window",
                            frame.kind
                        )));
                    }
                }
            }
        }
        core.commit_window()?;
    }

    // The controller's closing metrics frame (best-effort: a lossy link
    // may have eaten it).
    let grace = pace.map_or(Duration::from_secs(5), |p| p.mul_f64(4.0));
    let deadline = Instant::now() + grace;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Ok(None);
        }
        match link.recv(Some(deadline - now)) {
            Ok(Some(frame)) if frame.kind == FrameKind::Metrics => {
                return Ok(Some(decode_metrics(&frame.payload)?));
            }
            Ok(Some(_)) => {} // stragglers from the last window
            Ok(None) => return Ok(None),
            Err(LinkError::Closed) => return Ok(None),
            Err(e) => return Err(e.into()),
        }
    }
}
