//! Frame transports: the seam between the codec and the world.
//!
//! [`FrameTransport`] is the one interface the session loops drive;
//! [`TcpLink`] implements it over a real socket (length-prefixed reads
//! with an internal reassembly buffer, per-call timeouts), [`PipeLink`]
//! implements it over in-process byte queues for deterministic
//! single-threaded tests, and [`LossyLink`] wraps any transport and
//! injects deterministic frame drops and delays *after encoding* — the
//! same bytes a real lossy network would mangle, which is what the
//! lossy-link integration test leans on.

use crate::frame::{decode_frame, encode_frame, Frame, FrameKind, WireError, HEADER_LEN};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::rc::Rc;
use std::time::Duration;

/// Raw transport counters, shared by every link type. These feed the
/// `TransportMetrics` section of `MetricsSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkCounters {
    /// Frames received and decoded.
    pub frames_in: u64,
    /// Frames encoded and sent.
    pub frames_out: u64,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Frames the decoder refused (dropped whole, never partially
    /// applied).
    pub decode_errors: u64,
}

/// Why a link operation failed.
#[derive(Debug)]
pub enum LinkError {
    /// The peer closed the connection.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// The byte stream no longer frames correctly (bad magic, version
    /// skew, oversized length): the connection cannot be trusted past
    /// this point and must be re-established.
    Desync(WireError),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Closed => write!(f, "peer closed the connection"),
            LinkError::Io(e) => write!(f, "io error: {e}"),
            LinkError::Desync(e) => write!(f, "stream desync: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<std::io::Error> for LinkError {
    fn from(e: std::io::Error) -> Self {
        LinkError::Io(e)
    }
}

/// A bidirectional, ordered frame channel.
pub trait FrameTransport {
    /// Encode and send one frame (sequence numbers are assigned by the
    /// link).
    ///
    /// # Errors
    ///
    /// [`LinkError`] on transport failure.
    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<(), LinkError>;

    /// Receive the next frame. `timeout = None` blocks until a frame
    /// arrives or the peer closes; `Some(d)` returns `Ok(None)` if no
    /// frame arrived within `d`.
    ///
    /// # Errors
    ///
    /// [`LinkError`] on transport failure or stream desync.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, LinkError>;

    /// Counter snapshot.
    fn counters(&self) -> LinkCounters;
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// A [`FrameTransport`] over a TCP stream.
#[derive(Debug)]
pub struct TcpLink {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_seq: u32,
    counters: LinkCounters,
}

impl TcpLink {
    /// Wrap a connected stream. `TCP_NODELAY` is enabled: frames are
    /// control-plane sized and latency-sensitive.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> Result<TcpLink, LinkError> {
        stream.set_nodelay(true)?;
        Ok(TcpLink {
            stream,
            rbuf: Vec::new(),
            next_seq: 0,
            counters: LinkCounters::default(),
        })
    }

    fn try_decode(&mut self) -> Result<Option<Frame>, LinkError> {
        if self.rbuf.is_empty() {
            return Ok(None);
        }
        match decode_frame(&self.rbuf) {
            Ok((frame, used)) => {
                self.rbuf.drain(..used);
                self.counters.frames_in += 1;
                Ok(Some(frame))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(e) => {
                // Framing is length-prefixed: once the header lies, no
                // later byte boundary can be trusted.
                self.counters.decode_errors += 1;
                Err(LinkError::Desync(e))
            }
        }
    }
}

impl FrameTransport for TcpLink {
    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<(), LinkError> {
        let frame = Frame::new(kind, self.next_seq, payload);
        self.next_seq = self.next_seq.wrapping_add(1);
        let bytes = encode_frame(&frame);
        self.stream.write_all(&bytes)?;
        self.counters.frames_out += 1;
        self.counters.bytes_out += bytes.len() as u64;
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, LinkError> {
        loop {
            if let Some(frame) = self.try_decode()? {
                return Ok(Some(frame));
            }
            // Need more bytes. A zero timeout is interpreted by the OS
            // as "block forever", so floor it at 1 ms.
            self.stream
                .set_read_timeout(timeout.map(|t| t.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(LinkError::Closed),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.counters.bytes_in += n as u64;
                    // Keep the reassembly buffer honest even before a
                    // full frame lands.
                    if self.rbuf.len() >= HEADER_LEN {
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(LinkError::Io(e)),
            }
        }
    }

    fn counters(&self) -> LinkCounters {
        self.counters
    }
}

// ---------------------------------------------------------------------
// In-process pipe (deterministic tests)
// ---------------------------------------------------------------------

type ByteQueue = Rc<RefCell<VecDeque<Vec<u8>>>>;

/// One end of an in-process frame pipe: the same encode→bytes→decode
/// path as [`TcpLink`], minus the socket. Single-threaded by design
/// (`Rc`), which is exactly what the deterministic lossy-link test
/// wants — the test plays scheduler.
#[derive(Debug)]
pub struct PipeLink {
    out: ByteQueue,
    inbox: ByteQueue,
    next_seq: u32,
    counters: LinkCounters,
}

impl PipeLink {
    /// A connected pair (a, b): what a sends, b receives, and vice
    /// versa.
    pub fn pair() -> (PipeLink, PipeLink) {
        let ab: ByteQueue = Rc::new(RefCell::new(VecDeque::new()));
        let ba: ByteQueue = Rc::new(RefCell::new(VecDeque::new()));
        (
            PipeLink {
                out: Rc::clone(&ab),
                inbox: Rc::clone(&ba),
                next_seq: 0,
                counters: LinkCounters::default(),
            },
            PipeLink {
                out: ba,
                inbox: ab,
                next_seq: 0,
                counters: LinkCounters::default(),
            },
        )
    }
}

impl FrameTransport for PipeLink {
    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<(), LinkError> {
        let frame = Frame::new(kind, self.next_seq, payload);
        self.next_seq = self.next_seq.wrapping_add(1);
        let bytes = encode_frame(&frame);
        self.counters.frames_out += 1;
        self.counters.bytes_out += bytes.len() as u64;
        self.out.borrow_mut().push_back(bytes);
        Ok(())
    }

    fn recv(&mut self, _timeout: Option<Duration>) -> Result<Option<Frame>, LinkError> {
        // A pipe never blocks: "nothing queued" is the timeout case.
        let Some(bytes) = self.inbox.borrow_mut().pop_front() else {
            return Ok(None);
        };
        self.counters.bytes_in += bytes.len() as u64;
        match decode_frame(&bytes) {
            Ok((frame, _)) => {
                self.counters.frames_in += 1;
                Ok(Some(frame))
            }
            Err(e) => {
                self.counters.decode_errors += 1;
                Err(LinkError::Desync(e))
            }
        }
    }

    fn counters(&self) -> LinkCounters {
        self.counters
    }
}

// ---------------------------------------------------------------------
// Deterministic loss/delay injection
// ---------------------------------------------------------------------

/// A deterministic impairment rule, matched against a frame's kind and
/// the link's current tick (set by the driver via
/// [`LossyLink::set_tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Impairment {
    /// Which frame kind the rule hits (`None` = every kind).
    pub kind: Option<FrameKind>,
    /// First tick the rule is active (inclusive).
    pub from_tick: u64,
    /// First tick the rule is no longer active (exclusive).
    pub to_tick: u64,
    /// `0` = drop the frame; `n > 0` = hold it and deliver when the
    /// link's tick reaches `current + n` (reordering included free of
    /// charge: later frames overtake held ones).
    pub delay_ticks: u64,
}

impl Impairment {
    /// Drop every `kind` frame sent while the tick is in
    /// `[from_tick, to_tick)`.
    pub fn drop(kind: FrameKind, from_tick: u64, to_tick: u64) -> Impairment {
        Impairment {
            kind: Some(kind),
            from_tick,
            to_tick,
            delay_ticks: 0,
        }
    }

    /// Delay every `kind` frame sent while the tick is in
    /// `[from_tick, to_tick)` by `delay_ticks` ticks.
    pub fn delay(kind: FrameKind, from_tick: u64, to_tick: u64, delay_ticks: u64) -> Impairment {
        Impairment {
            kind: Some(kind),
            from_tick,
            to_tick,
            delay_ticks,
        }
    }

    fn matches(&self, kind: FrameKind, tick: u64) -> bool {
        tick >= self.from_tick && tick < self.to_tick && self.kind.is_none_or(|k| k == kind)
    }
}

/// A lossy wrapper over any transport: applies [`Impairment`]s to
/// outbound frames *after* encoding, at the transport seam. Entirely
/// deterministic — the same rules and the same tick schedule impair the
/// same frames every run.
#[derive(Debug)]
pub struct LossyLink<T: FrameTransport> {
    inner: T,
    rules: Vec<Impairment>,
    tick: u64,
    held: Vec<(u64, FrameKind, Vec<u8>)>,
    dropped: u64,
    delayed: u64,
}

impl<T: FrameTransport> LossyLink<T> {
    /// Wrap `inner` with impairment `rules`.
    pub fn new(inner: T, rules: Vec<Impairment>) -> LossyLink<T> {
        LossyLink {
            inner,
            rules,
            tick: 0,
            held: Vec::new(),
            dropped: 0,
            delayed: 0,
        }
    }

    /// Advance the link's tick, releasing any held frame whose delivery
    /// tick has arrived (in hold order).
    ///
    /// # Errors
    ///
    /// Propagates send failures from the inner transport.
    pub fn set_tick(&mut self, tick: u64) -> Result<(), LinkError> {
        self.tick = tick;
        let due: Vec<(u64, FrameKind, Vec<u8>)> = {
            let mut due = Vec::new();
            self.held.retain_mut(|(at, kind, payload)| {
                if *at <= tick {
                    due.push((*at, *kind, std::mem::take(payload)));
                    false
                } else {
                    true
                }
            });
            due
        };
        for (_, kind, payload) in due {
            self.inner.send(kind, payload)?;
        }
        Ok(())
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: FrameTransport> FrameTransport for LossyLink<T> {
    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<(), LinkError> {
        if let Some(rule) = self.rules.iter().find(|r| r.matches(kind, self.tick)) {
            if rule.delay_ticks == 0 {
                self.dropped += 1;
                return Ok(()); // the wire ate it
            }
            self.delayed += 1;
            self.held
                .push((self.tick + rule.delay_ticks, kind, payload));
            return Ok(());
        }
        self.inner.send(kind, payload)
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, LinkError> {
        self.inner.recv(timeout)
    }

    fn counters(&self) -> LinkCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_delivers_in_order() {
        let (mut a, mut b) = PipeLink::pair();
        a.send(FrameKind::Hello, vec![1]).unwrap();
        a.send(FrameKind::Heartbeat, vec![2]).unwrap();
        let first = b.recv(None).unwrap().unwrap();
        let second = b.recv(None).unwrap().unwrap();
        assert_eq!(first.kind, FrameKind::Hello);
        assert_eq!(second.kind, FrameKind::Heartbeat);
        assert!(b.recv(None).unwrap().is_none(), "queue drained");
        assert_eq!(a.counters().frames_out, 2);
        assert_eq!(b.counters().frames_in, 2);
    }

    #[test]
    fn lossy_drop_and_delay_are_tick_scoped() {
        let (pipe, mut far) = PipeLink::pair();
        let mut lossy = LossyLink::new(
            pipe,
            vec![
                Impairment::drop(FrameKind::Observation, 5, 7),
                Impairment::delay(FrameKind::Directive, 5, 7, 3),
            ],
        );
        // Tick 4: clean.
        lossy.set_tick(4).unwrap();
        lossy.send(FrameKind::Observation, vec![4]).unwrap();
        assert!(far.recv(None).unwrap().is_some());
        // Ticks 5..7: observations vanish, directives are held.
        for t in 5..7 {
            lossy.set_tick(t).unwrap();
            lossy.send(FrameKind::Observation, vec![t as u8]).unwrap();
            lossy.send(FrameKind::Directive, vec![t as u8]).unwrap();
            assert!(far.recv(None).unwrap().is_none(), "tick {t} impaired");
        }
        assert_eq!(lossy.dropped(), 2);
        assert_eq!(lossy.delayed(), 2);
        // Tick 8: the tick-5 directive (due at 8) is released; the
        // tick-6 one (due at 9) is still held.
        lossy.set_tick(8).unwrap();
        let released = far.recv(None).unwrap().expect("tick-5 directive due");
        assert_eq!(released.payload, vec![5]);
        assert!(far.recv(None).unwrap().is_none());
        lossy.set_tick(9).unwrap();
        assert_eq!(far.recv(None).unwrap().unwrap().payload, vec![6]);
    }

    #[test]
    fn tcp_link_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut link = TcpLink::new(stream).unwrap();
            link.send(FrameKind::Hello, vec![7; 100]).unwrap();
            let back = link.recv(None).unwrap().unwrap();
            assert_eq!(back.kind, FrameKind::Heartbeat);
            assert_eq!(back.payload, vec![9; 50_000], "big frame reassembled");
        });
        let (stream, _) = listener.accept().unwrap();
        let mut link = TcpLink::new(stream).unwrap();
        let hello = link.recv(None).unwrap().unwrap();
        assert_eq!(hello.kind, FrameKind::Hello);
        assert_eq!(hello.payload, vec![7; 100]);
        link.send(FrameKind::Heartbeat, vec![9; 50_000]).unwrap();
        client.join().unwrap();
        // Timeout path: nothing more is coming.
        assert!(matches!(
            link.recv(Some(Duration::from_millis(20))),
            Ok(None) | Err(LinkError::Closed)
        ));
    }
}
