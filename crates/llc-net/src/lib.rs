//! The control plane over a real transport: wire protocol, node agent,
//! and controller daemon for the hierarchical LLC manager.
//!
//! The in-process split (PR 7) proved the hierarchy runs behind an
//! ingest/emit API; this crate runs that API over a socket:
//!
//! * [`frame`] — a hand-rolled length-prefixed frame codec
//!   (`"LN"` magic, version, kind, sequence, payload length), every
//!   encoder and decoder a pure function over bytes, total on arbitrary
//!   input: truncated, corrupted, version-skewed and oversized frames
//!   are rejected whole, never partially applied.
//! * [`codec`] — explicit little-endian message codecs for the five
//!   frame kinds: `Hello`/`Heartbeat` (handshake and window markers
//!   carrying epoch and tick), `ModuleObservation`, `Directive` and
//!   `MetricsSnapshot`. Floats travel as IEEE-754 bit patterns, so a
//!   lossless link is *bit-transparent* — the property the golden
//!   equivalence test pins.
//! * [`link`] — the transport seam: [`TcpLink`] over a socket,
//!   [`PipeLink`] in memory for deterministic tests, [`LossyLink`]
//!   injecting deterministic frame drops and delays.
//! * [`agent`] — the node-agent core: a locally-instantiated plant
//!   shard plus the directive [`Reconciler`] (latest-epoch-wins per
//!   actuator, idempotent re-apply, wedged-actuator read-back).
//! * [`controld`] — the controller core: a
//!   [`ControlPlane`](llc_cluster::ControlPlane) plus transport
//!   accounting (late and lost observations, decode errors,
//!   reconnects), surfaced through the `transport` section of
//!   [`MetricsSnapshot`](llc_cluster::MetricsSnapshot).
//! * [`session`] — the two session loops (lockstep and wall-clock
//!   paced) and the window protocol tying it together.
//!
//! The `llc-agent` and `llc-controld` binaries wrap the cores in a TCP
//! connect/listen shell; `examples/distributed_control.rs` runs both in
//! one process over loopback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod codec;
pub mod controld;
pub mod frame;
pub mod link;
pub mod scenario;
pub mod session;

pub use agent::{AgentCore, ReconcileReport, Reconciler};
pub use codec::{
    decode_directive, decode_heartbeat, decode_hello, decode_metrics, decode_observation,
    encode_directive, encode_heartbeat, encode_hello, encode_metrics, encode_observation,
    Heartbeat, Hello, Role,
};
pub use controld::{ControldCore, CtrlEvent};
pub use frame::{
    decode_frame, encode_frame, Frame, FrameKind, WireError, HEADER_LEN, MAX_PAYLOAD, VERSION,
};
pub use link::{FrameTransport, Impairment, LinkCounters, LinkError, LossyLink, PipeLink, TcpLink};
pub use scenario::{Family, RunSpec};
pub use session::{run_agent, serve_controller, SessionError};
