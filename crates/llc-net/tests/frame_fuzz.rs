//! Property fuzzing of the wire codec: round-trip identity on every
//! frame kind, and total (panic-free, never-partially-applied)
//! rejection of truncated, corrupted and version-skewed input.

use llc_net::{
    decode_directive, decode_frame, decode_heartbeat, decode_hello, decode_metrics,
    decode_observation, encode_directive, encode_frame, encode_heartbeat, encode_hello,
    encode_observation, Frame, FrameKind, Heartbeat, Hello, Role, WireError, HEADER_LEN, VERSION,
};

use llc_cluster::{Directive, DirectiveKind, Level, MemberTelemetry, ModuleObservation};
use llc_sim::{PowerState, WindowStats};
use proptest::prelude::*;
use proptest::{collection, strategy::Strategy};

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn arb_role() -> impl Strategy<Value = Role> {
    (0u8..2).prop_map(|b| {
        if b == 0 {
            Role::Agent
        } else {
            Role::Controller
        }
    })
}

fn arb_f64() -> impl Strategy<Value = f64> {
    // Magnitudes across many binades plus the special values whose bit
    // patterns must survive the wire untouched.
    prop_oneof![
        -1.0e12..1.0e12f64,
        0.0..1.0e-300f64,
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
    ]
}

fn arb_state() -> impl Strategy<Value = PowerState> {
    prop_oneof![
        Just(PowerState::Off),
        Just(PowerState::On),
        Just(PowerState::Draining),
        (0.0..1.0e6f64).prop_map(|ready_at| PowerState::Booting { ready_at }),
    ]
}

fn arb_window() -> impl Strategy<Value = WindowStats> {
    (
        (0u64..1_000_000, 0u64..1_000_000, arb_f64()),
        (arb_f64(), 0u64..1_000_000, arb_f64()),
    )
        .prop_map(
            |((arrivals, completions, response_sum), (demand_sum, dropped, energy))| WindowStats {
                arrivals,
                completions,
                response_sum,
                demand_sum,
                dropped,
                energy,
            },
        )
}

fn arb_telemetry() -> impl Strategy<Value = MemberTelemetry> {
    (
        (0usize..64, 0usize..10_000, arb_window()),
        (arb_state(), 0usize..16),
        (arb_bool(), 0u64..1_000_000),
    )
        .prop_map(
            |((member, queue, window), (state, frequency_index), (telemetry_ok, rejected))| {
                MemberTelemetry {
                    member,
                    queue,
                    window,
                    state,
                    frequency_index,
                    telemetry_ok,
                    rejected,
                }
            },
        )
}

fn arb_observation() -> impl Strategy<Value = ModuleObservation> {
    (
        (0usize..32, 0u64..100_000),
        (
            collection::vec(arb_telemetry(), 1..8),
            0u64..1_000_000,
            0u64..1_000_000,
        ),
    )
        .prop_map(
            |((module, tick), (members, arrivals, dropped))| ModuleObservation {
                module,
                tick,
                members,
                arrivals,
                dropped,
            },
        )
}

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::L0), Just(Level::L1), Just(Level::L2)]
}

fn arb_kind() -> impl Strategy<Value = DirectiveKind> {
    prop_oneof![
        (0usize..64, 0usize..16)
            .prop_map(|(computer, index)| DirectiveKind::Frequency { computer, index }),
        (0usize..64, arb_bool())
            .prop_map(|(computer, on)| DirectiveKind::Activation { computer, on }),
        ((0usize..32, arb_bool()), collection::vec(0.0..1.0f64, 1..8)).prop_map(
            |((m, global), weights)| DirectiveKind::Split {
                module: if global { None } else { Some(m) },
                weights,
            }
        ),
        (0usize..32, arb_bool())
            .prop_map(|(module, active)| DirectiveKind::SafeMode { module, active }),
    ]
}

fn arb_directive() -> impl Strategy<Value = Directive> {
    (
        (0u64..100_000, arb_f64(), arb_level()),
        (0u64..100_000, arb_kind()),
    )
        .prop_map(|((tick, time, level), (epoch, kind))| Directive {
            tick,
            time,
            level,
            epoch,
            kind,
        })
}

fn arb_hello() -> impl Strategy<Value = Hello> {
    (
        (arb_role(), 0u64..100_000, 0u64..100_000),
        (arb_f64(), 1u64..100_000, collection::vec(1u32..64, 1..6)),
    )
        .prop_map(
            |((role, tick, epoch), (t_l0, total_ticks, members_per_module))| Hello {
                role,
                tick,
                epoch,
                t_l0,
                total_ticks,
                members_per_module,
            },
        )
}

fn arb_heartbeat() -> impl Strategy<Value = Heartbeat> {
    (arb_role(), (0u64..100_000, 0u64..100_000), 0u32..10_000).prop_map(
        |(role, (tick, epoch), wedged)| Heartbeat {
            role,
            tick,
            epoch,
            wedged,
        },
    )
}

/// Bit-pattern equality: the wire promises IEEE-754 transparency, so
/// NaN == NaN at the bit level even though `PartialEq` says otherwise.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn observations_bits_eq(a: &ModuleObservation, b: &ModuleObservation) -> bool {
    a.module == b.module
        && a.tick == b.tick
        && a.arrivals == b.arrivals
        && a.dropped == b.dropped
        && a.members.len() == b.members.len()
        && a.members.iter().zip(&b.members).all(|(x, y)| {
            x.member == y.member
                && x.queue == y.queue
                && x.frequency_index == y.frequency_index
                && x.telemetry_ok == y.telemetry_ok
                && x.rejected == y.rejected
                && x.window.arrivals == y.window.arrivals
                && x.window.completions == y.window.completions
                && x.window.dropped == y.window.dropped
                && bits_eq(x.window.response_sum, y.window.response_sum)
                && bits_eq(x.window.demand_sum, y.window.demand_sum)
                && bits_eq(x.window.energy, y.window.energy)
                && match (x.state, y.state) {
                    (
                        PowerState::Booting { ready_at: ra },
                        PowerState::Booting { ready_at: rb },
                    ) => bits_eq(ra, rb),
                    (sa, sb) => sa == sb,
                }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_layer_round_trips(
        kind_tag in 1u8..=5,
        seq in 0u32..=u32::MAX,
        payload in collection::vec(0u8..=255, 0usize..300),
    ) {
        let kind = FrameKind::from_u8(kind_tag).expect("tags 1..=5 are valid");
        let frame = Frame::new(kind, seq, payload);
        let bytes = encode_frame(&frame);
        let (back, used) = decode_frame(&bytes).expect("self-encoded frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.version, VERSION);
        prop_assert_eq!(back.seq, frame.seq);
        prop_assert!(back.kind == frame.kind);
        prop_assert_eq!(back.payload, frame.payload);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked(
        kind_tag in 1u8..=5,
        payload in collection::vec(0u8..=255, 0usize..64),
    ) {
        let kind = FrameKind::from_u8(kind_tag).expect("valid tag");
        let bytes = encode_frame(&Frame::new(kind, 7, payload));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { have, need }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(need > cut);
                }
                other => prop_assert!(false, "cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_headers_never_panic(
        seq in 0u32..=u32::MAX,
        payload in collection::vec(0u8..=255, 0usize..64),
        pos in 0usize..HEADER_LEN,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&Frame::new(FrameKind::Observation, seq, payload));
        bytes[pos] ^= flip;
        // Total: every corruption either still frames (a flipped seq or
        // a benign kind/len coincidence) or errors — never panics, and
        // magic/version damage is always caught.
        match decode_frame(&bytes) {
            Ok(_) | Err(_) => {}
        }
        if pos < 2 {
            prop_assert!(
                matches!(decode_frame(&bytes), Err(WireError::BadMagic(_))),
                "magic damage must be fatal"
            );
        } else if pos == 2 {
            prop_assert!(
                matches!(decode_frame(&bytes), Err(WireError::VersionSkew { .. })),
                "version skew must be fatal"
            );
        }
    }

    #[test]
    fn version_skew_is_rejected(version in 0u8..=255, payload in collection::vec(0u8..=255, 0usize..32)) {
        prop_assume!(version != VERSION);
        let mut bytes = encode_frame(&Frame::new(FrameKind::Hello, 0, payload));
        bytes[2] = version;
        match decode_frame(&bytes) {
            Err(WireError::VersionSkew { got, supported }) => {
                prop_assert_eq!(got, version);
                prop_assert_eq!(supported, VERSION);
            }
            other => prop_assert!(false, "expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn hello_round_trips(hello in arb_hello()) {
        let back = decode_hello(&encode_hello(&hello)).expect("round trip");
        prop_assert!(back.role == hello.role);
        prop_assert_eq!(back.tick, hello.tick);
        prop_assert_eq!(back.epoch, hello.epoch);
        prop_assert!(bits_eq(back.t_l0, hello.t_l0));
        prop_assert_eq!(back.total_ticks, hello.total_ticks);
        prop_assert_eq!(back.members_per_module, hello.members_per_module);
    }

    #[test]
    fn heartbeat_round_trips(hb in arb_heartbeat()) {
        let back = decode_heartbeat(&encode_heartbeat(&hb)).expect("round trip");
        prop_assert!(back == hb);
    }

    #[test]
    fn observation_round_trips(observation in arb_observation()) {
        let back = decode_observation(&encode_observation(&observation)).expect("round trip");
        prop_assert!(
            observations_bits_eq(&back, &observation),
            "observation changed on the wire"
        );
    }

    #[test]
    fn directive_round_trips(directive in arb_directive()) {
        let back = decode_directive(&encode_directive(&directive)).expect("round trip");
        prop_assert_eq!(back.tick, directive.tick);
        prop_assert!(bits_eq(back.time, directive.time));
        prop_assert!(back.level == directive.level);
        prop_assert_eq!(back.epoch, directive.epoch);
        match (&back.kind, &directive.kind) {
            (
                DirectiveKind::Split { module: ma, weights: wa },
                DirectiveKind::Split { module: mb, weights: wb },
            ) => {
                prop_assert_eq!(ma, mb);
                prop_assert_eq!(wa.len(), wb.len());
                for (x, y) in wa.iter().zip(wb) {
                    prop_assert!(bits_eq(*x, *y));
                }
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn truncated_messages_reject_without_panic(observation in arb_observation()) {
        let bytes = encode_observation(&observation);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_observation(&bytes[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn message_decoders_are_total_on_noise(bytes in collection::vec(0u8..=255, 0usize..256)) {
        // Random bytes must never panic or abort any payload decoder —
        // Ok (a coincidence) and Err are both acceptable.
        let _ = decode_hello(&bytes);
        let _ = decode_heartbeat(&bytes);
        let _ = decode_observation(&bytes);
        let _ = decode_directive(&bytes);
        let _ = decode_metrics(&bytes);
    }

    #[test]
    fn corrupted_directive_payload_never_panics(
        directive in arb_directive(),
        pos_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_directive(&directive);
        prop_assume!(!bytes.is_empty());
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= flip;
        let _ = decode_directive(&bytes);
    }
}
