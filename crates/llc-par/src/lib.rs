//! Deterministic scoped-thread fan-out for the offline learning pipeline.
//!
//! The registry-less build environment cannot pull `rayon`, so this crate
//! provides the small slice of it the workspace needs: [`par_map`], an
//! order-preserving parallel map over a slice. Three properties matter to
//! the controllers built on top:
//!
//! 1. **Determinism** — each item's result is written into its own
//!    pre-sized slot, so the output is bit-identical to the serial map
//!    regardless of thread count or scheduling (no atomic accumulation,
//!    no float reassociation).
//! 2. **No nesting explosion** — a `par_map` issued from inside a worker
//!    runs serially inline (thread-local guard), so outer-level
//!    parallelism (e.g. one task per abstraction map) composes with
//!    inner-level parallelism (one task per grid point) without spawning
//!    `threads²` workers.
//! 3. **Graceful single-core degradation** — with one available core (or
//!    [`set_threads`]`(1)`) the map runs inline with zero overhead, which
//!    also serves as the serial baseline for benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count override: 0 = auto (`available_parallelism`).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside `par_map` workers to force nested calls inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Override the worker count used by [`par_map`]; `0` restores the
/// default (one worker per available core, or the `LLC_THREADS`
/// environment variable when set). Benchmarks use `set_threads(1)` to
/// time the serial baseline.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(env) = std::env::var_os("LLC_THREADS") {
        if let Some(n) = env.to_str().and_then(|s| s.parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `true` when called from inside a [`par_map`] worker (nested calls run
/// inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Run `f` with the worker count forced to `n`, restoring the previous
/// override afterwards (including on panic). The shard-count knob for
/// benchmark arms and determinism tests that compare the same sweep at
/// several thread counts — note the override is process-global, so
/// concurrent callers of `with_threads` race; keep such comparisons
/// inside one sequential test.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(n, Ordering::Relaxed));
    f()
}

/// Map `f` over `items` in parallel, preserving order.
///
/// Equivalent to `items.iter().map(f).collect()` for any pure `f`; the
/// parallel path chunks the slice contiguously over scoped threads and
/// writes each result into its own slot.
pub fn par_map<T: Sync, U: Send, F>(items: &[T], f: F) -> Vec<U>
where
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || in_worker() {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Apply `f` to every element of `items` in place, in parallel.
///
/// The mutable sibling of [`par_map`], for sweeps that update large flat
/// buffers without producing a new allocation — e.g. the online-learning
/// staleness decay over a dense grid's per-cell confidence counters.
/// Each worker owns a contiguous disjoint chunk, so the result is
/// identical to the serial loop for any pure per-element `f` and there is
/// no synchronization beyond the scope join.
pub fn par_for_each_mut<T: Send, F>(items: &mut [T], f: F)
where
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || in_worker() {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for part in items.chunks_mut(chunk) {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                for item in part.iter_mut() {
                    f(item);
                }
            });
        }
    });
}

/// Map `f` over the index range `0..n` in parallel, preserving order.
///
/// The indexed sibling of [`par_map`], for producers that generate their
/// input from an index (e.g. grid points reconstructed from a flat grid
/// offset) instead of borrowing a slice.
pub fn par_map_range<U: Send, F>(n: usize, f: F) -> Vec<U>
where
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = par_map(&items, |&x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(&empty, |&x: &u64| x).is_empty());
        assert_eq!(par_map(&[42u64], |&x| x + 1), vec![43]);
    }

    #[test]
    fn for_each_mut_matches_serial_sweep() {
        let mut parallel: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut serial = parallel.clone();
        par_for_each_mut(&mut parallel, |x| *x = *x * 0.5 + 1.0);
        for x in serial.iter_mut() {
            *x = *x * 0.5 + 1.0;
        }
        assert_eq!(parallel, serial);
        let mut empty: Vec<u32> = vec![];
        par_for_each_mut(&mut empty, |x| *x += 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn range_variant_matches() {
        assert_eq!(par_map_range(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let result = par_map(&outer, |&i| {
            // A nested par_map must not deadlock or explode; it runs
            // serially inside the worker.
            let inner = par_map_range(4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * i * 10 + 6).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn float_results_bit_identical_to_serial() {
        let items: Vec<f64> = (0..4096).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e6).sqrt().max(0.0) + x / 3.0;
        let serial: Vec<u64> = items.iter().map(|x| f(x).to_bits()).collect();
        let parallel: Vec<u64> = par_map(&items, |x| f(x).to_bits());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn thread_override_roundtrip() {
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(0);
        assert!(num_threads() >= 1);
        let inside = with_threads(5, num_threads);
        assert_eq!(inside, 5);
        assert!(num_threads() >= 1, "override restored after the closure");
    }
}
