use crate::Error;

/// Result of a bounded (local) search.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOptimum<C> {
    /// The best candidate found.
    pub candidate: C,
    /// Its cost.
    pub cost: f64,
    /// Total number of cost evaluations performed.
    pub evaluations: usize,
    /// Number of improvement rounds taken before stopping.
    pub rounds: usize,
}

/// Bounded search strategy for combinatorial control sets.
///
/// The paper's L1 controller "searches a limited neighborhood of [the
/// current] state for a solution" instead of enumerating the whole input
/// space. `BoundedSearch` captures that pattern generically: best-improvement
/// hill climbing from a start candidate, expanding caller-supplied
/// neighborhoods, stopping after a round without improvement or when the
/// evaluation budget is exhausted.
///
/// The search is deterministic: ties are broken in favor of the earlier
/// candidate in the neighborhood ordering, so callers control tie-breaking
/// by how they enumerate neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedSearch {
    max_rounds: usize,
    max_evaluations: usize,
}

impl Default for BoundedSearch {
    fn default() -> Self {
        BoundedSearch {
            max_rounds: 64,
            max_evaluations: 100_000,
        }
    }
}

impl BoundedSearch {
    /// A search limited to `max_rounds` improvement rounds and
    /// `max_evaluations` cost evaluations (whichever is hit first).
    pub fn new(max_rounds: usize, max_evaluations: usize) -> Self {
        BoundedSearch {
            max_rounds,
            max_evaluations,
        }
    }

    /// Maximum improvement rounds.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Maximum cost evaluations.
    pub fn max_evaluations(&self) -> usize {
        self.max_evaluations
    }

    /// Run best-improvement local search from `start`.
    ///
    /// `evaluate` scores a candidate (lower is better); `neighbors`
    /// enumerates the local moves from a candidate.
    pub fn minimize<C, F, N>(&self, start: C, mut evaluate: F, neighbors: N) -> LocalOptimum<C>
    where
        C: Clone,
        F: FnMut(&C) -> f64,
        N: Fn(&C) -> Vec<C>,
    {
        let mut best = start;
        let mut best_cost = evaluate(&best);
        let mut evaluations = 1;
        let mut rounds = 0;

        while rounds < self.max_rounds && evaluations < self.max_evaluations {
            rounds += 1;
            let mut improved = false;
            let mut round_best: Option<(C, f64)> = None;
            for cand in neighbors(&best) {
                if evaluations >= self.max_evaluations {
                    break;
                }
                let cost = evaluate(&cand);
                evaluations += 1;
                if cost < round_best.as_ref().map_or(best_cost, |(_, c)| *c) {
                    round_best = Some((cand, cost));
                }
            }
            if let Some((cand, cost)) = round_best {
                best = cand;
                best_cost = cost;
                improved = true;
            }
            if !improved {
                break;
            }
        }

        LocalOptimum {
            candidate: best,
            cost: best_cost,
            evaluations,
            rounds,
        }
    }

    /// [`BoundedSearch::minimize`] over a *visitor* neighborhood: instead
    /// of materializing a `Vec` of neighbors per round, `neighbors` calls
    /// the supplied visitor once per neighbor (in the same order a `Vec`
    /// enumeration would use), borrowing a shared scratch candidate. Only
    /// candidates that improve the round's best are cloned, so the inner
    /// loop of a hot search allocates nothing. Identical trajectory to
    /// [`BoundedSearch::minimize`] for the same neighbor order: same
    /// budgets, same tie-breaking, same result.
    pub fn minimize_with<C, F, N>(
        &self,
        start: C,
        mut evaluate: F,
        mut neighbors: N,
    ) -> LocalOptimum<C>
    where
        C: Clone,
        F: FnMut(&C) -> f64,
        N: FnMut(&C, &mut dyn FnMut(&C)),
    {
        let mut best = start;
        let mut best_cost = evaluate(&best);
        let mut evaluations = 1;
        let mut rounds = 0;

        while rounds < self.max_rounds && evaluations < self.max_evaluations {
            rounds += 1;
            let mut round_best: Option<(C, f64)> = None;
            neighbors(&best, &mut |cand| {
                // Mirrors the pre-evaluation budget check of the Vec
                // path: once the budget is spent, remaining neighbors of
                // the round are skipped without being evaluated.
                if evaluations >= self.max_evaluations {
                    return;
                }
                let cost = evaluate(cand);
                evaluations += 1;
                if cost < round_best.as_ref().map_or(best_cost, |(_, c)| *c) {
                    round_best = Some((cand.clone(), cost));
                }
            });
            if let Some((cand, cost)) = round_best {
                best = cand;
                best_cost = cost;
            } else {
                break;
            }
        }

        LocalOptimum {
            candidate: best,
            cost: best_cost,
            evaluations,
            rounds,
        }
    }

    /// Pick the minimum-cost candidate out of an explicit finite set.
    ///
    /// This is the degenerate "neighborhood = whole set, one round" search
    /// used when the quantized input space is small enough to enumerate
    /// (e.g. the L2 controller's γ simplex at 0.1 quantization).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCandidateSet`] if `candidates` is empty.
    pub fn argmin<C, F>(candidates: Vec<C>, mut evaluate: F) -> Result<LocalOptimum<C>, Error>
    where
        C: Clone,
        F: FnMut(&C) -> f64,
    {
        let mut iter = candidates.into_iter();
        let first = iter.next().ok_or(Error::EmptyCandidateSet)?;
        let mut best_cost = evaluate(&first);
        let mut best = first;
        let mut evaluations = 1;
        for cand in iter {
            let cost = evaluate(&cand);
            evaluations += 1;
            if cost < best_cost {
                best = cand;
                best_cost = cost;
            }
        }
        Ok(LocalOptimum {
            candidate: best,
            cost: best_cost,
            evaluations,
            rounds: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex quadratic on an integer line: unique minimum at 17.
    fn quad(x: &i64) -> f64 {
        let d = (*x - 17) as f64;
        d * d
    }

    fn line_neighbors(x: &i64) -> Vec<i64> {
        vec![x - 1, x + 1]
    }

    #[test]
    fn hill_climb_finds_convex_minimum() {
        let s = BoundedSearch::new(100, 10_000);
        let opt = s.minimize(0, quad, line_neighbors);
        assert_eq!(opt.candidate, 17);
        assert_eq!(opt.cost, 0.0);
        assert!(opt.rounds <= 18);
    }

    #[test]
    fn respects_round_budget() {
        let s = BoundedSearch::new(3, 10_000);
        let opt = s.minimize(0, quad, line_neighbors);
        assert_eq!(opt.candidate, 3, "one step per round");
        assert_eq!(opt.rounds, 3);
    }

    #[test]
    fn respects_evaluation_budget() {
        let s = BoundedSearch::new(1_000, 7);
        let opt = s.minimize(0, quad, line_neighbors);
        assert!(opt.evaluations <= 7);
        assert!(opt.candidate <= 3);
    }

    #[test]
    fn stops_at_local_optimum() {
        // Two-basin function: from 0 the search must settle in the nearer
        // basin at 2 even though the global optimum is at 10.
        let f = |x: &i64| match *x {
            2 => 1.0,
            10 => 0.0,
            v => 5.0 + (v as f64 - 6.0).abs(),
        };
        let s = BoundedSearch::default();
        let opt = s.minimize(1, f, line_neighbors);
        assert_eq!(opt.candidate, 2);
    }

    #[test]
    fn minimize_with_matches_vec_path() {
        // Same start, same neighbor order: the visitor variant must
        // reproduce the Vec variant's trajectory exactly, including
        // under tight round and evaluation budgets.
        for (rounds, evals) in [(100, 10_000), (3, 10_000), (1_000, 7), (2, 3)] {
            let s = BoundedSearch::new(rounds, evals);
            let vec_opt = s.minimize(0, quad, line_neighbors);
            let vis_opt = s.minimize_with(0, quad, |x: &i64, visit| {
                visit(&(x - 1));
                visit(&(x + 1));
            });
            assert_eq!(vec_opt, vis_opt, "rounds={rounds} evals={evals}");
        }
    }

    #[test]
    fn argmin_over_explicit_set() {
        let opt = BoundedSearch::argmin(vec![5, 3, 9, 3], |x| f64::from(*x)).unwrap();
        assert_eq!(opt.candidate, 3, "first of the tied minima wins");
        assert_eq!(opt.cost, 3.0);
        assert_eq!(opt.evaluations, 4);
    }

    #[test]
    fn argmin_empty_errors() {
        let r = BoundedSearch::argmin(Vec::<i32>::new(), |_| 0.0);
        assert_eq!(r.unwrap_err(), Error::EmptyCandidateSet);
    }

    #[test]
    fn default_budgets_are_generous() {
        let s = BoundedSearch::default();
        assert!(s.max_rounds() >= 16);
        assert!(s.max_evaluations() >= 10_000);
    }
}
