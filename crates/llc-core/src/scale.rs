//! Online service-rate scale estimation — the drift-aware L0.
//!
//! The analytic queue model of eqns. (5)–(6) predicts a service rate of
//! `φ/ĉ`: frequency scaling over the measured per-request demand. Both
//! inputs are *demand-side* telemetry — they measure how much work a
//! request asks for, not how fast the machine actually delivers it. A
//! plant whose delivered capacity silently degrades (thermal throttling,
//! noisy neighbors, a machine coming back from a failure slow) keeps
//! reporting nominal demands, so a model built on `φ/ĉ` alone believes
//! in capacity that no longer exists. Under deep degradation the L0
//! limit-cycles on exactly this error: it picks a frequency the model
//! says is sufficient, the real queue grows, the backlog eventually
//! forces a flat-out drain the model thinks is overkill, and the cycle
//! repeats.
//!
//! [`ServiceScaleEstimator`] closes the gap from the *delivery* side. In
//! any window where the server stayed busy, the completions themselves
//! measure the true service rate `μ = completions / T`, and the ratio
//!
//! ```text
//! ŝ_obs = μ_measured / μ_model = completions · ĉ / (T · φ)
//! ```
//!
//! is a direct observation of the capacity scale the plant is actually
//! delivering. An EWMA over busy-window observations tracks it; the
//! model then serves `ŝ·φ/ĉ` (equivalently: an effective processing
//! time `ĉ/ŝ`), which removes the dominant non-local residual the drift
//! detectors otherwise flag. Idle-tail windows are rejected — when the
//! queue empties mid-window, `completions/T` measures *throughput* (λ),
//! not capacity, and would drag the estimate toward whatever the load
//! happens to be.

/// Knobs of a [`ServiceScaleEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEstimatorConfig {
    /// Master switch. Disabled (the default) the estimator is inert and
    /// [`ServiceScaleEstimator::estimate`] pins 1.0, reproducing the
    /// drift-blind controllers bit for bit.
    pub enabled: bool,
    /// EWMA smoothing weight per accepted observation (`0 < α ≤ 1`).
    pub alpha: f64,
    /// Lower clamp on the estimate (`> 0`): a window of pathological
    /// telemetry must not collapse the modelled capacity to zero.
    pub min_scale: f64,
    /// Upper clamp on the estimate: delivered capacity above nominal is
    /// possible (conservative ĉ priors) but bounded.
    pub max_scale: f64,
    /// Completions a window must contain before it counts as evidence —
    /// a two-completion window's rate estimate is mostly noise.
    pub min_completions: u64,
}

impl Default for ScaleEstimatorConfig {
    fn default() -> Self {
        ScaleEstimatorConfig {
            enabled: false,
            alpha: 0.2,
            min_scale: 0.1,
            max_scale: 1.5,
            min_completions: 5,
        }
    }
}

impl ScaleEstimatorConfig {
    /// The default knobs with the estimator switched on.
    pub fn enabled() -> Self {
        ScaleEstimatorConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Validate the knob ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (`alpha` outside `(0, 1]`, scale
    /// clamps non-positive or inverted).
    pub fn validated(self) -> Self {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must lie in (0, 1]"
        );
        assert!(
            self.min_scale > 0.0 && self.min_scale.is_finite(),
            "min_scale must be positive and finite"
        );
        assert!(
            self.max_scale >= self.min_scale && self.max_scale.is_finite(),
            "max_scale must be finite and >= min_scale"
        );
        self
    }
}

/// EWMA estimator of the delivered service-rate scale `ŝ` (1.0 =
/// nominal), fed one realized window at a time.
///
/// Feed [`ServiceScaleEstimator::observe_window`] every sampling period;
/// read [`ServiceScaleEstimator::estimate`] when building the predictive
/// model. The estimator is deliberately one-sided about evidence: only
/// windows that end backlogged (the server provably stayed busy to the
/// sampling instant) and completed at least `min_completions` requests
/// move the estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceScaleEstimator {
    cfg: ScaleEstimatorConfig,
    /// Current estimate; `None` until the first accepted observation.
    scale: Option<f64>,
    accepted: u64,
    rejected: u64,
}

impl ServiceScaleEstimator {
    /// An estimator with the given knobs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see
    /// [`ScaleEstimatorConfig::validated`]).
    pub fn new(cfg: ScaleEstimatorConfig) -> Self {
        ServiceScaleEstimator {
            cfg: cfg.validated(),
            scale: None,
            accepted: 0,
            rejected: 0,
        }
    }

    /// The knobs in force.
    pub fn config(&self) -> &ScaleEstimatorConfig {
        &self.cfg
    }

    /// Absorb one realized window: `completions` finished over
    /// `window_secs` seconds at frequency factor `phi` with estimated
    /// full-speed demand `c_est`, and `busy` states whether the server
    /// still held a backlog at the sampling instant (the condition under
    /// which `completions / window_secs` measures capacity rather than
    /// throughput). Returns the scale observation absorbed, or `None`
    /// when the window was rejected as evidence.
    pub fn observe_window(
        &mut self,
        completions: u64,
        window_secs: f64,
        phi: f64,
        c_est: f64,
        busy: bool,
    ) -> Option<f64> {
        if !self.cfg.enabled {
            return None;
        }
        // NaN inputs fail these comparisons too, landing in the reject
        // branch rather than poisoning the estimate.
        let inputs_ok = window_secs > 0.0 && phi > 0.0 && c_est > 0.0;
        if !busy || completions < self.cfg.min_completions.max(1) || !inputs_ok {
            self.rejected += 1;
            return None;
        }
        let observed = (completions as f64 * c_est / (window_secs * phi))
            .clamp(self.cfg.min_scale, self.cfg.max_scale);
        if !observed.is_finite() {
            self.rejected += 1;
            return None;
        }
        let next = match self.scale {
            // First accepted observation seeds the estimate outright: the
            // prior (1.0) is exactly the assumption being corrected.
            None => observed,
            Some(s) => s + self.cfg.alpha * (observed - s),
        };
        self.scale = Some(next.clamp(self.cfg.min_scale, self.cfg.max_scale));
        self.accepted += 1;
        Some(observed)
    }

    /// The current delivered-capacity scale `ŝ` (1.0 before any accepted
    /// observation, or while disabled).
    pub fn estimate(&self) -> f64 {
        if !self.cfg.enabled {
            return 1.0;
        }
        self.scale.unwrap_or(1.0)
    }

    /// Windows accepted as capacity evidence so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Windows rejected (idle tail, too few completions, broken inputs).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Forget everything and return to the nominal prior — for callers
    /// that know the plant was restored to nominal (the retrain
    /// hot-swap intentionally keeps the estimate: its rebuilt models
    /// assume ŝ continues to track the degraded plant).
    pub fn reset(&mut self) {
        self.scale = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Completions a plant at true scale `s` produces over a busy window.
    fn busy_completions(s: f64, phi: f64, c: f64, window: f64, noise: f64) -> u64 {
        ((s * phi / c * window) * (1.0 + noise)).round().max(0.0) as u64
    }

    #[test]
    fn disabled_estimator_is_inert() {
        let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::default());
        assert_eq!(e.estimate(), 1.0);
        assert_eq!(e.observe_window(1000, 30.0, 0.5, 0.02, true), None);
        assert_eq!(e.estimate(), 1.0);
        assert_eq!(e.accepted(), 0);
    }

    #[test]
    fn idle_windows_are_rejected() {
        let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
        // Plenty of completions but the queue emptied: throughput, not
        // capacity — must not move the estimate.
        assert_eq!(e.observe_window(1000, 30.0, 1.0, 0.02, false), None);
        // Busy but almost nothing completed: noise — rejected too.
        assert_eq!(e.observe_window(2, 30.0, 1.0, 0.02, true), None);
        assert_eq!(e.estimate(), 1.0);
        assert_eq!(e.rejected(), 2);
    }

    #[test]
    fn busy_windows_converge_on_the_true_scale() {
        let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
        let (phi, c, window) = (0.75, 0.02, 30.0);
        for _ in 0..30 {
            let n = busy_completions(0.5, phi, c, window, 0.0);
            e.observe_window(n, window, phi, c, true);
        }
        assert!(
            (e.estimate() - 0.5).abs() < 0.02,
            "ŝ = {} should track the injected 0.5 scale",
            e.estimate()
        );
        assert_eq!(e.accepted(), 30);
        e.reset();
        assert_eq!(e.estimate(), 1.0);
    }

    #[test]
    fn estimate_respects_clamps() {
        let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
        // An absurd telemetry glitch (10x nominal capacity) clamps at
        // max_scale instead of poisoning the model.
        e.observe_window(15_000, 30.0, 1.0, 0.02, true);
        assert!(e.estimate() <= e.config().max_scale + 1e-12);
        let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
        e.observe_window(6, 30.0, 1.0, 0.02, true);
        assert!(e.estimate() >= e.config().min_scale - 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = ServiceScaleEstimator::new(ScaleEstimatorConfig {
            alpha: 0.0,
            ..ScaleEstimatorConfig::enabled()
        });
    }

    proptest! {
        /// Convergence: after a step to any true scale in [0.2, 1.2],
        /// the estimator lands within 5% of it inside 40 busy windows,
        /// from any starting scale, under bounded per-window noise.
        #[test]
        fn tracks_injected_scale_step(
            s_before in 0.4f64..1.0,
            s_after in 0.2f64..1.2,
            phi in 0.25f64..1.0,
            c in 0.012f64..0.03,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
            let window = 30.0;
            for _ in 0..20 {
                let noise = 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
                e.observe_window(busy_completions(s_before, phi, c, window, noise), window, phi, c, true);
            }
            // The plant steps to s_after (e.g. set_service_scale in the
            // simulator); the estimator must follow within 40 windows.
            for _ in 0..40 {
                let noise = 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
                e.observe_window(busy_completions(s_after, phi, c, window, noise), window, phi, c, true);
            }
            let err = (e.estimate() - s_after).abs() / s_after;
            prop_assert!(
                err < 0.05,
                "ŝ = {:.4} after step to {:.4} (rel err {:.3})",
                e.estimate(), s_after, err
            );
        }

        /// No-drift bias bound: under a stationary nominal plant with
        /// bounded window noise, ŝ stays within 3% of 1.0 — the
        /// estimator must not invent drift from noise.
        #[test]
        fn nominal_plant_keeps_unit_scale(
            phi in 0.25f64..1.0,
            c in 0.012f64..0.03,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5ca1e);
            let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
            let window = 30.0;
            for _ in 0..200 {
                let noise = 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
                e.observe_window(busy_completions(1.0, phi, c, window, noise), window, phi, c, true);
                let err = (e.estimate() - 1.0).abs();
                prop_assert!(err < 0.03, "ŝ drifted to {:.4} on a nominal plant", e.estimate());
            }
        }

        /// Gap immunity: a telemetry gap of any length and flavor — idle
        /// windows, blank windows, outright NaN inputs — must hold the
        /// estimate exactly where it was, keep it finite and inside the
        /// clamps, and leave the estimator able to track a genuine
        /// post-gap capacity shift.
        #[test]
        fn gap_streams_never_poison_the_estimate(
            s_before in 0.4f64..1.3,
            s_after in 0.4f64..1.3,
            phi in 0.25f64..1.0,
            c in 0.012f64..0.03,
            gap_len in 1usize..48,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6a9);
            let mut e = ServiceScaleEstimator::new(ScaleEstimatorConfig::enabled());
            let window = 30.0;
            for _ in 0..80 {
                let noise = 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
                e.observe_window(busy_completions(s_before, phi, c, window, noise), window, phi, c, true);
            }
            let held = e.estimate();
            prop_assert!(held.is_finite());

            // The blackout: cycle through every way a window goes bad.
            for k in 0..gap_len {
                let moved = match k % 4 {
                    // Idle tail — completions measure throughput, not capacity.
                    0 => e.observe_window(1000, window, phi, c, false),
                    // Dark machine — nothing completed at all.
                    1 => e.observe_window(0, window, phi, c, true),
                    // Corrupted demand estimate.
                    2 => e.observe_window(500, window, phi, f64::NAN, true),
                    // Corrupted clock.
                    _ => e.observe_window(500, f64::NAN, phi, c, true),
                };
                prop_assert_eq!(moved, None, "a gap window counted as evidence");
                let est = e.estimate();
                prop_assert!(est.is_finite(), "gap poisoned ŝ to {}", est);
                prop_assert!(
                    (e.config().min_scale..=e.config().max_scale).contains(&est),
                    "gap pushed ŝ out of clamp: {}", est
                );
            }
            prop_assert_eq!(e.estimate(), held, "the gap moved the estimate");

            // Recovery: post-gap evidence still converges on the new truth.
            for _ in 0..80 {
                let noise = 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
                e.observe_window(busy_completions(s_after, phi, c, window, noise), window, phi, c, true);
            }
            let err = (e.estimate() - s_after).abs() / s_after;
            prop_assert!(
                err < 0.05,
                "post-gap ŝ = {:.4}, wanted {:.4} (rel err {:.3})",
                e.estimate(), s_after, err
            );
        }
    }
}
