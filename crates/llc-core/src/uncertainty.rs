use crate::{EnvStep, Forecast};

/// The forecast uncertainty band `λ̂(q) ± δ(q)` used for chattering
/// mitigation (§4.2 of the paper).
///
/// Workload estimates within the prediction horizon carry an error band
/// whose half-width `δ` is the running average error between actual and
/// forecast values. The L1 controller evaluates every candidate action
/// against the three sampled arrival rates `λ̂−δ`, `λ̂` and `λ̂+δ` and uses
/// the *average* of the three costs, damping configuration flapping caused
/// by noisy forecasts.
///
/// `UncertaintyBand` tracks `δ` online from (actual, forecast) pairs and
/// expands scalar forecasts into three-sample [`EnvStep`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertaintyBand {
    /// Exponential smoothing factor for the running mean absolute error.
    smoothing: f64,
    /// Current half-width δ (mean absolute forecast error).
    delta: f64,
    /// Number of observations absorbed.
    observations: u64,
    /// Lower clamp applied when sampling (e.g. arrival rates cannot go
    /// negative).
    floor: Option<f64>,
}

impl UncertaintyBand {
    /// A band updated by exponential smoothing with factor
    /// `smoothing ∈ (0, 1]` (weight of the newest error sample).
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is outside `(0, 1]`.
    pub fn new(smoothing: f64) -> Self {
        assert!(
            smoothing > 0.0 && smoothing <= 1.0,
            "smoothing must lie in (0, 1], got {smoothing}"
        );
        UncertaintyBand {
            smoothing,
            delta: 0.0,
            observations: 0,
            floor: None,
        }
    }

    /// Clamp generated samples from below at `floor` (e.g. 0 for rates).
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Record an (actual, forecast) pair, updating the mean absolute error.
    pub fn observe(&mut self, actual: f64, forecast: f64) {
        let err = (actual - forecast).abs();
        if self.observations == 0 {
            self.delta = err;
        } else {
            self.delta = self.smoothing * err + (1.0 - self.smoothing) * self.delta;
        }
        self.observations += 1;
    }

    /// The current half-width `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of error observations absorbed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The three-sample scenario `{λ̂−δ, λ̂, λ̂+δ}` around a nominal
    /// forecast, with equal weights and the nominal sample carried forward.
    pub fn scenario(&self, nominal: f64) -> EnvStep<f64> {
        let clamp = |v: f64| match self.floor {
            Some(fl) => v.max(fl),
            None => v,
        };
        EnvStep {
            nominal: clamp(nominal),
            samples: vec![
                (clamp(nominal - self.delta), 1.0),
                (clamp(nominal), 1.0),
                (clamp(nominal + self.delta), 1.0),
            ],
        }
    }

    /// Expand a sequence of nominal forecasts into a banded [`Forecast`].
    pub fn forecast(&self, nominals: &[f64]) -> Forecast<f64> {
        Forecast::new(nominals.iter().map(|&n| self.scenario(n)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_observation_sets_delta() {
        let mut b = UncertaintyBand::new(0.2);
        assert_eq!(b.delta(), 0.0);
        b.observe(110.0, 100.0);
        assert!((b.delta() - 10.0).abs() < 1e-12);
        assert_eq!(b.observations(), 1);
    }

    #[test]
    fn delta_smooths_toward_recent_errors() {
        let mut b = UncertaintyBand::new(0.5);
        b.observe(10.0, 0.0); // err 10
        b.observe(0.0, 0.0); // err 0 -> delta 5
        assert!((b.delta() - 5.0).abs() < 1e-12);
        b.observe(0.0, 0.0); // -> 2.5
        assert!((b.delta() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scenario_has_three_samples_around_nominal() {
        let mut b = UncertaintyBand::new(1.0);
        b.observe(104.0, 100.0);
        let s = b.scenario(50.0);
        assert_eq!(s.nominal, 50.0);
        let values: Vec<f64> = s.samples.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![46.0, 50.0, 54.0]);
    }

    #[test]
    fn floor_clamps_samples() {
        let mut b = UncertaintyBand::new(1.0).with_floor(0.0);
        b.observe(20.0, 0.0); // delta 20
        let s = b.scenario(5.0);
        let values: Vec<f64> = s.samples.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![0.0, 5.0, 25.0]);
    }

    #[test]
    fn forecast_expands_each_step() {
        let b = UncertaintyBand::new(0.3);
        let f = b.forecast(&[1.0, 2.0, 3.0]);
        assert_eq!(f.len(), 3);
        assert_eq!(f[2].nominal, 3.0);
        assert_eq!(f[0].samples.len(), 3);
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn zero_smoothing_panics() {
        let _ = UncertaintyBand::new(0.0);
    }

    proptest! {
        #[test]
        fn delta_never_negative(errs in proptest::collection::vec(-1e3..1e3f64, 0..50)) {
            let mut b = UncertaintyBand::new(0.25);
            for e in errs {
                b.observe(e, 0.0);
                prop_assert!(b.delta() >= 0.0);
            }
        }

        #[test]
        fn delta_bounded_by_max_error(errs in proptest::collection::vec(0.0..1e3f64, 1..50)) {
            let mut b = UncertaintyBand::new(0.25);
            let mut max_err = 0.0f64;
            for e in &errs {
                b.observe(*e, 0.0);
                max_err = max_err.max(*e);
            }
            prop_assert!(b.delta() <= max_err + 1e-9);
        }
    }
}
