//! Observation logging for online (incremental) model correction.
//!
//! The paper's §6 outlook: "the abstraction maps … can be updated online
//! using the observed values" — instead of trusting the offline training
//! pass forever, each control period records the *realized* outcome of
//! the decision that was taken (the load actually routed, the cost and
//! queue actually measured) and feeds it back into the learned models.
//! This module holds the domain-agnostic half of that loop: a bounded
//! [`ObservationLog`] the controllers fill as outcomes arrive, and the
//! [`OnlineConfig`] knobs governing how aggressively the learned maps
//! chase those outcomes. The map-side blending itself lives with the
//! approximation substrates (`llc-approx`) and their consumers.

use std::collections::VecDeque;

/// One realized control-period outcome: the operating point the
/// controller queried its model at (`key`, e.g. `(λ, ĉ, q₀)`), and what
/// the plant actually did there.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation<V> {
    /// The model query key the decision was based on.
    pub key: Vec<f64>,
    /// The measured outcome at that key (e.g. realized cost / end queue).
    pub outcome: V,
    /// Control period the observation was taken in.
    pub tick: u64,
}

/// A bounded FIFO of realized outcomes awaiting absorption into a model.
///
/// Controllers push one entry per control period; the learning pass
/// drains the log in arrival order (oldest first, so blending replays
/// history in the order it happened). When full, the *oldest* entry is
/// evicted — under a stalled learner the log keeps the freshest window of
/// plant behaviour, which is the window worth learning from under drift.
#[derive(Debug, Clone)]
pub struct ObservationLog<V> {
    entries: VecDeque<Observation<V>>,
    capacity: usize,
    recorded: u64,
    evicted: u64,
}

impl<V> ObservationLog<V> {
    /// An empty log holding at most `capacity` pending observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "observation log needs capacity");
        ObservationLog {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Maximum number of pending observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending (not yet drained) observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Observations lost to capacity eviction (a non-zero value means the
    /// learner is not keeping up with the plant).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Append an observation, evicting the oldest entry when full.
    pub fn push(&mut self, key: Vec<f64>, outcome: V, tick: u64) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(Observation { key, outcome, tick });
        self.recorded += 1;
    }

    /// Remove and return all pending observations, oldest first.
    pub fn drain(&mut self) -> Vec<Observation<V>> {
        self.entries.drain(..).collect()
    }

    /// Iterate pending observations without draining, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Observation<V>> {
        self.entries.iter()
    }
}

/// Knobs of the online learning loop shared by every model that absorbs
/// an [`ObservationLog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Floor of the per-update blend weight once a cell is seasoned
    /// (`0 < η ≤ 1`): the exponential forgetting rate that tracks drift.
    pub learning_rate: f64,
    /// Re-convergence blend-weight floor used while the drift detector
    /// reports [`crate::LearnRate::Fast`] (`learning_rate ≤ η_fast ≤ 1`):
    /// after a detected drift the learner chases outcomes aggressively
    /// for the detector's hold-off window, then falls back to the steady
    /// rate.
    pub fast_learning_rate: f64,
    /// Knobs of the per-stream Page–Hinkley drift detector that switches
    /// between the two rates (and raises the re-train recommendation).
    pub detector: crate::DetectorConfig,
    /// Pseudo-observations credited to the offline training pass: how
    /// much evidence a cell's trained value counts as before online
    /// outcomes start dominating it.
    pub prior_weight: f64,
    /// Staleness sweep: per-sweep multiplier on every cell's accumulated
    /// confidence (`1.0` disables decay).
    pub decay_factor: f64,
    /// Run the staleness sweep every this many learning passes
    /// (`0` disables the sweep entirely).
    pub decay_every: u64,
    /// Capacity of each observation log.
    pub log_capacity: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            learning_rate: 0.25,
            fast_learning_rate: 0.6,
            detector: crate::DetectorConfig::default(),
            prior_weight: 4.0,
            decay_factor: 0.9,
            decay_every: 16,
            log_capacity: 1024,
        }
    }
}

impl OnlineConfig {
    /// Validate the knob ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (rate outside `(0, 1]`, negative
    /// prior, decay factor outside `[0, 1]`, zero log capacity).
    pub fn validated(self) -> Self {
        assert!(
            self.learning_rate > 0.0 && self.learning_rate <= 1.0,
            "learning rate must lie in (0, 1]"
        );
        assert!(
            self.fast_learning_rate >= self.learning_rate && self.fast_learning_rate <= 1.0,
            "fast learning rate must lie in [learning_rate, 1]"
        );
        let _ = self.detector.validated();
        assert!(
            self.prior_weight >= 0.0 && self.prior_weight.is_finite(),
            "prior weight must be finite and non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.decay_factor),
            "decay factor must lie in [0, 1]"
        );
        assert!(self.log_capacity > 0, "log capacity must be positive");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_keeps_arrival_order() {
        let mut log = ObservationLog::new(8);
        log.push(vec![1.0], 10.0, 0);
        log.push(vec![2.0], 20.0, 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 2);
        let drained = log.drain();
        assert_eq!(drained[0].key, vec![1.0]);
        assert_eq!(drained[1].outcome, 20.0);
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 2, "drain keeps the lifetime counter");
    }

    #[test]
    fn full_log_evicts_oldest() {
        let mut log = ObservationLog::new(2);
        log.push(vec![1.0], 1u32, 0);
        log.push(vec![2.0], 2u32, 1);
        log.push(vec![3.0], 3u32, 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted(), 1);
        let keys: Vec<f64> = log.iter().map(|o| o.key[0]).collect();
        assert_eq!(keys, vec![2.0, 3.0], "freshest window survives");
    }

    #[test]
    fn default_config_validates() {
        let cfg = OnlineConfig::default().validated();
        assert!(cfg.learning_rate > 0.0);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn bad_decay_factor_rejected() {
        let _ = OnlineConfig {
            decay_factor: 1.5,
            ..OnlineConfig::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: ObservationLog<f64> = ObservationLog::new(0);
    }
}
