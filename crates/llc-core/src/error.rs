use std::fmt;

/// Errors reported by the LLC framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The prediction horizon must be at least one step.
    ZeroHorizon,
    /// The plant reported no admissible input in some encountered state.
    EmptyInputSet,
    /// The forecast supplies fewer environment steps than the horizon needs.
    ForecastTooShort {
        /// Steps required by the controller (its horizon).
        required: usize,
        /// Steps actually present in the forecast.
        available: usize,
    },
    /// A scenario set inside a forecast step carries no samples.
    EmptyScenario,
    /// A multi-rate schedule was built with no levels or a zero multiplier.
    InvalidSchedule,
    /// Bounded search was started with an empty candidate set.
    EmptyCandidateSet,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroHorizon => write!(f, "prediction horizon must be at least 1"),
            Error::EmptyInputSet => write!(f, "no admissible control input in current state"),
            Error::ForecastTooShort {
                required,
                available,
            } => write!(
                f,
                "forecast provides {available} environment steps but the horizon needs {required}"
            ),
            Error::EmptyScenario => write!(f, "environment scenario set is empty"),
            Error::InvalidSchedule => {
                write!(
                    f,
                    "multi-rate schedule needs at least one level with multiplier >= 1"
                )
            }
            Error::EmptyCandidateSet => write!(f, "bounded search started with no candidates"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            Error::ZeroHorizon,
            Error::EmptyInputSet,
            Error::ForecastTooShort {
                required: 3,
                available: 1,
            },
            Error::EmptyScenario,
            Error::InvalidSchedule,
            Error::EmptyCandidateSet,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
