//! Generic limited-lookahead control (LLC) for switching hybrid systems.
//!
//! This crate implements the control-theoretic core of Kandasamy,
//! Abdelwahed & Khandekar, *"A Hierarchical Optimization Framework for
//! Autonomic Performance Management of Distributed Computing Systems"*
//! (ICDCS 2006): model-predictive control over a **finite** input set,
//! where at every sampling instant the controller
//!
//! 1. forecasts the environment over a limited prediction horizon,
//! 2. builds the tree of reachable future states under every admissible
//!    input sequence (or a bounded neighborhood of the current input),
//! 3. selects the sequence minimizing a cumulative cost, and
//! 4. applies only the first input of that sequence (receding horizon).
//!
//! The crate is deliberately domain-agnostic: the controlled system is
//! described by the [`Plant`] trait (dynamics, admissible inputs, cost),
//! the environment forecast by [`EnvStep`] scenario sets (which also carry
//! the paper's ±δ uncertainty band used for chattering mitigation), and
//! search strategy by [`LookaheadController`] (exhaustive with
//! branch-and-bound pruning) or [`BoundedSearch`] (local neighborhood
//! search for combinatorial input spaces).
//!
//! # Example
//!
//! A one-dimensional thermostat-like plant with three inputs:
//!
//! ```
//! use llc_core::{Plant, LookaheadController, EnvStep, Forecast};
//!
//! struct Thermo;
//! impl Plant for Thermo {
//!     type State = f64;
//!     type Input = i8;          // -1: cool, 0: off, +1: heat
//!     type Env = f64;           // ambient drift
//!     fn admissible(&self, _x: &f64) -> Vec<i8> { vec![-1, 0, 1] }
//!     fn step(&self, x: &f64, u: &i8, w: &f64) -> f64 { x + f64::from(*u) + w }
//!     fn cost(&self, x: &f64, u: &i8, _prev: Option<&i8>) -> f64 {
//!         (x - 20.0).abs() + 0.1 * f64::from(u.abs())
//!     }
//! }
//!
//! # fn main() -> Result<(), llc_core::Error> {
//! let controller = LookaheadController::new(3)?;
//! let forecast = Forecast::from_nominal(vec![0.5, 0.5, 0.5]);
//! let decision = controller.decide(&Thermo, &17.0, None, &forecast)?;
//! assert_eq!(decision.input, 1); // heat towards the set-point
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod cost;
mod detect;
mod error;
mod llc;
mod model;
mod online;
mod scale;
mod schedule;
mod uncertainty;

pub use bounded::{BoundedSearch, LocalOptimum};
pub use cost::{Norm, Penalty, SetPoint};
pub use detect::{DetectorConfig, DriftDetector, LearnRate};
pub use error::Error;
pub use llc::{Decision, LookaheadController, SearchStats};
pub use model::{EnvStep, Forecast, Plant};
pub use online::{Observation, ObservationLog, OnlineConfig};
pub use scale::{ScaleEstimatorConfig, ServiceScaleEstimator};
pub use schedule::{LevelTick, MultiRateSchedule};
pub use uncertainty::UncertaintyBand;
