/// How a scalar deviation is folded into the cost.
///
/// The paper writes all costs as weighted norms `‖v‖_Q`; for the scalar
/// quantities of the case study either the absolute value or the square is
/// meant depending on context. Both are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Norm {
    /// `w · |v|` — linear penalty (default; matches the paper's weight
    /// scales Q=100, R=1, W=8 on same-order quantities).
    #[default]
    Abs,
    /// `w · v²` — quadratic penalty.
    Square,
}

/// A weighted norm term of a cost function, e.g. `‖ε‖_Q` or `‖Δu‖_W`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Penalty {
    weight: f64,
    norm: Norm,
}

impl Penalty {
    /// A linear penalty `w·|v|`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite: cost terms must be
    /// non-negative for branch-and-bound pruning to be admissible.
    pub fn abs(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "penalty weight must be finite and non-negative, got {weight}"
        );
        Penalty {
            weight,
            norm: Norm::Abs,
        }
    }

    /// A quadratic penalty `w·v²`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn square(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "penalty weight must be finite and non-negative, got {weight}"
        );
        Penalty {
            weight,
            norm: Norm::Square,
        }
    }

    /// Evaluate the penalty for deviation `v`.
    pub fn eval(&self, v: f64) -> f64 {
        match self.norm {
            Norm::Abs => self.weight * v.abs(),
            Norm::Square => self.weight * v * v,
        }
    }

    /// The weight `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The norm flavor.
    pub fn norm(&self) -> Norm {
        self.norm
    }
}

/// A set-point specification with a one-sided soft constraint.
///
/// The paper drives the system to a neighborhood of `x*` and penalizes
/// only *violations*: the slack variable
///
/// ```text
/// ε(k) = 0            if r(k) ≤ r*
///        r(k) − r*    otherwise
/// ```
///
/// is non-zero only when the response-time constraint is violated, and its
/// non-zero values are heavily penalized in the cost function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetPoint {
    target: f64,
}

impl SetPoint {
    /// A set-point at `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not finite.
    pub fn new(target: f64) -> Self {
        assert!(target.is_finite(), "set-point must be finite, got {target}");
        SetPoint { target }
    }

    /// The target value `x*`.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// One-sided slack `ε = max(0, value − target)`: positive only when the
    /// observed value *exceeds* the target (e.g. response time too high).
    pub fn slack_above(&self, value: f64) -> f64 {
        (value - self.target).max(0.0)
    }

    /// One-sided slack `max(0, target − value)` for lower-bound goals
    /// (e.g. throughput too low).
    pub fn slack_below(&self, value: f64) -> f64 {
        (self.target - value).max(0.0)
    }

    /// Symmetric deviation `|value − target|` for regulation problems.
    pub fn deviation(&self, value: f64) -> f64 {
        (value - self.target).abs()
    }

    /// Whether `value` satisfies the upper-bound goal `value ≤ target`.
    pub fn satisfied_above(&self, value: f64) -> bool {
        value <= self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn abs_penalty() {
        let p = Penalty::abs(100.0);
        assert_eq!(p.eval(0.0), 0.0);
        assert_eq!(p.eval(1.5), 150.0);
        assert_eq!(p.eval(-1.5), 150.0);
        assert_eq!(p.weight(), 100.0);
        assert_eq!(p.norm(), Norm::Abs);
    }

    #[test]
    fn square_penalty() {
        let p = Penalty::square(2.0);
        assert_eq!(p.eval(3.0), 18.0);
        assert_eq!(p.eval(-3.0), 18.0);
        assert_eq!(p.norm(), Norm::Square);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = Penalty::abs(-1.0);
    }

    #[test]
    fn setpoint_slacks() {
        let sp = SetPoint::new(4.0);
        assert_eq!(sp.target(), 4.0);
        assert_eq!(sp.slack_above(3.0), 0.0);
        assert_eq!(sp.slack_above(4.0), 0.0);
        assert_eq!(sp.slack_above(5.5), 1.5);
        assert_eq!(sp.slack_below(3.0), 1.0);
        assert_eq!(sp.slack_below(5.0), 0.0);
        assert_eq!(sp.deviation(2.0), 2.0);
        assert!(sp.satisfied_above(4.0));
        assert!(!sp.satisfied_above(4.001));
    }

    proptest! {
        #[test]
        fn penalty_is_nonnegative(w in 0.0..1e6f64, v in -1e6..1e6f64) {
            prop_assert!(Penalty::abs(w).eval(v) >= 0.0);
            prop_assert!(Penalty::square(w).eval(v) >= 0.0);
        }

        #[test]
        fn penalty_is_even(w in 0.0..1e3f64, v in -1e3..1e3f64) {
            prop_assert_eq!(Penalty::abs(w).eval(v), Penalty::abs(w).eval(-v));
            prop_assert_eq!(Penalty::square(w).eval(v), Penalty::square(w).eval(-v));
        }

        #[test]
        fn slack_is_complementary(t in -1e3..1e3f64, v in -1e3..1e3f64) {
            let sp = SetPoint::new(t);
            // At most one of the two one-sided slacks is non-zero, and they
            // reconstruct the absolute deviation.
            let above = sp.slack_above(v);
            let below = sp.slack_below(v);
            prop_assert!(above == 0.0 || below == 0.0);
            prop_assert!((above + below - sp.deviation(v)).abs() < 1e-9);
        }
    }
}
