use crate::Error;

/// Which hierarchy levels fire at a given base tick.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTick {
    /// Index of the base tick (multiples of the base period).
    pub tick: u64,
    /// Simulation time of the tick in seconds.
    pub time: f64,
    /// Hierarchy levels due at this tick, ordered **top-down** (highest
    /// level first) so that decisions propagate downwards within a tick,
    /// matching the paper: the L2 split is decided before L1 reconfigures,
    /// and L1's {α, γ} are communicated to the L0 controllers before they
    /// pick frequencies.
    pub levels: Vec<usize>,
}

/// Multi-rate sampling schedule for a controller hierarchy.
///
/// Level 0 ticks every `base_period` seconds; level `i` ticks every
/// `multipliers[i] · base_period` seconds (`multipliers[0]` is forced to 1).
/// The paper uses `T_L0 = 30 s` and `T_L1 = T_L2 = 120 s`, i.e. multipliers
/// `[1, 4, 4]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRateSchedule {
    base_period: f64,
    multipliers: Vec<u64>,
}

impl MultiRateSchedule {
    /// Build a schedule from the base sampling period (seconds) and the
    /// per-level multipliers relative to it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSchedule`] if `multipliers` is empty, any
    /// multiplier is zero, `multipliers[0] != 1`, or `base_period <= 0`.
    pub fn new(base_period: f64, multipliers: Vec<u64>) -> Result<Self, Error> {
        if multipliers.is_empty()
            || multipliers.contains(&0)
            || multipliers[0] != 1
            || base_period <= 0.0
            || base_period.is_nan()
        {
            return Err(Error::InvalidSchedule);
        }
        Ok(MultiRateSchedule {
            base_period,
            multipliers,
        })
    }

    /// The base (level-0) sampling period in seconds.
    pub fn base_period(&self) -> f64 {
        self.base_period
    }

    /// Number of hierarchy levels.
    pub fn levels(&self) -> usize {
        self.multipliers.len()
    }

    /// Sampling period of level `level` in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn period(&self, level: usize) -> f64 {
        self.base_period * self.multipliers[level] as f64
    }

    /// The levels due at base tick `tick`, ordered top-down.
    pub fn due_at(&self, tick: u64) -> Vec<usize> {
        (0..self.multipliers.len())
            .rev()
            .filter(|&l| tick.is_multiple_of(self.multipliers[l]))
            .collect()
    }

    /// Iterate `num_ticks` base ticks starting at tick 0 (time 0).
    pub fn ticks(&self, num_ticks: u64) -> impl Iterator<Item = LevelTick> + '_ {
        (0..num_ticks).map(move |tick| LevelTick {
            tick,
            time: tick as f64 * self.base_period,
            levels: self.due_at(tick),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_30s_base_with_l1_l2_at_2min() {
        let s = MultiRateSchedule::new(30.0, vec![1, 4, 4]).unwrap();
        assert_eq!(s.levels(), 3);
        assert_eq!(s.period(0), 30.0);
        assert_eq!(s.period(1), 120.0);
        assert_eq!(s.period(2), 120.0);
        // Tick 0: everything fires, top-down.
        assert_eq!(s.due_at(0), vec![2, 1, 0]);
        // Ticks 1..3: only L0.
        assert_eq!(s.due_at(1), vec![0]);
        assert_eq!(s.due_at(3), vec![0]);
        // Tick 4 = 120 s: all again.
        assert_eq!(s.due_at(4), vec![2, 1, 0]);
    }

    #[test]
    fn tick_times_are_multiples_of_base() {
        let s = MultiRateSchedule::new(30.0, vec![1, 4]).unwrap();
        let ticks: Vec<LevelTick> = s.ticks(5).collect();
        assert_eq!(ticks.len(), 5);
        assert_eq!(ticks[3].time, 90.0);
        assert_eq!(ticks[3].tick, 3);
        assert_eq!(ticks[4].levels, vec![1, 0]);
    }

    #[test]
    fn invalid_schedules_rejected() {
        assert_eq!(
            MultiRateSchedule::new(30.0, vec![]).unwrap_err(),
            Error::InvalidSchedule
        );
        assert_eq!(
            MultiRateSchedule::new(30.0, vec![1, 0]).unwrap_err(),
            Error::InvalidSchedule
        );
        assert_eq!(
            MultiRateSchedule::new(30.0, vec![2, 4]).unwrap_err(),
            Error::InvalidSchedule,
            "level 0 multiplier must be 1"
        );
        assert_eq!(
            MultiRateSchedule::new(0.0, vec![1]).unwrap_err(),
            Error::InvalidSchedule
        );
        assert_eq!(
            MultiRateSchedule::new(f64::NAN, vec![1]).unwrap_err(),
            Error::InvalidSchedule
        );
    }

    #[test]
    fn single_level_schedule_fires_every_tick() {
        let s = MultiRateSchedule::new(1.0, vec![1]).unwrap();
        for t in 0..10 {
            assert_eq!(s.due_at(t), vec![0]);
        }
    }

    #[test]
    fn non_divisible_multipliers_interleave() {
        let s = MultiRateSchedule::new(10.0, vec![1, 2, 3]).unwrap();
        assert_eq!(s.due_at(0), vec![2, 1, 0]);
        assert_eq!(s.due_at(2), vec![1, 0]);
        assert_eq!(s.due_at(3), vec![2, 0]);
        assert_eq!(s.due_at(6), vec![2, 1, 0]);
    }
}
