use crate::Error;

/// A controlled switching hybrid system, in the sense of the paper's
/// discrete-time state-space equation `x(k+1) = f(x(k), u(k), ω(k))`.
///
/// The plant exposes three things to the controller:
///
/// * the **admissible input set** `U(x)` — finite, possibly state-dependent;
/// * the **dynamic map** `f` predicting the next state given an input and an
///   (estimated) environment sample;
/// * the **cost** `J(x, u)` of landing in a state having applied an input,
///   optionally penalizing the change `Δu` relative to the previous input.
///
/// Implementations should be cheap to call: the lookahead search evaluates
/// `step` and `cost` `O(|U|^N)` times per decision.
pub trait Plant {
    /// System state `x(k)`.
    type State: Clone;
    /// Control input `u(k)`, drawn from a finite set.
    type Input: Clone + PartialEq;
    /// Environment parameters `ω(k)` (e.g. arrival rate, service time).
    type Env: Clone;

    /// The admissible input set `U(x)` in state `x`.
    ///
    /// Returning an empty vector causes the controller to fail with
    /// [`Error::EmptyInputSet`](crate::Error::EmptyInputSet).
    fn admissible(&self, x: &Self::State) -> Vec<Self::Input>;

    /// Write the admissible input set into `out` (cleared by the caller).
    ///
    /// The lookahead search calls this once per expanded node; the default
    /// delegates to [`Plant::admissible`], but plants with a
    /// state-independent input set should override it to skip the
    /// per-node allocation. Must enumerate the same inputs in the same
    /// order as `admissible` (tie-breaking depends on it).
    fn admissible_into(&self, x: &Self::State, out: &mut Vec<Self::Input>) {
        out.extend(self.admissible(x));
    }

    /// One-step prediction `x̂(k+1) = f(x(k), u(k), ω̂(k))`.
    fn step(&self, x: &Self::State, u: &Self::Input, w: &Self::Env) -> Self::State;

    /// Cost `J` of the *successor* state `x_next` reached by applying `u`.
    ///
    /// `prev` is the input applied at the previous step, enabling
    /// `‖Δu‖`-style switching penalties; it is `None` on the first step of
    /// the first decision.
    fn cost(&self, x_next: &Self::State, u: &Self::Input, prev: Option<&Self::Input>) -> f64;
}

/// The environment scenario set for one future time step.
///
/// The paper's chattering mitigation evaluates each candidate action
/// against *three* samples of the forecast arrival rate
/// (`λ̂−δ`, `λ̂`, `λ̂+δ`) and averages their costs, while the search tree
/// itself advances along the nominal sample. `EnvStep` captures exactly
/// that: a nominal sample used to extend the state trajectory plus a
/// weighted sample set used for expected-cost evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvStep<E> {
    /// The nominal (most likely) environment sample; the search recurses
    /// through the state produced by this sample.
    pub nominal: E,
    /// Weighted samples for expected-cost evaluation. Weights need not be
    /// normalized; the controller divides by their sum. Must be non-empty.
    pub samples: Vec<(E, f64)>,
}

impl<E: Clone> EnvStep<E> {
    /// A deterministic step: the nominal sample with weight 1.
    pub fn certain(env: E) -> Self {
        EnvStep {
            nominal: env.clone(),
            samples: vec![(env, 1.0)],
        }
    }

    /// A step with equally-weighted samples around a nominal value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyScenario`] if `samples` is empty.
    pub fn with_samples(nominal: E, samples: Vec<E>) -> Result<Self, Error> {
        if samples.is_empty() {
            return Err(Error::EmptyScenario);
        }
        Ok(EnvStep {
            nominal,
            samples: samples.into_iter().map(|s| (s, 1.0)).collect(),
        })
    }

    /// Total sample weight (the normalizer for expected costs).
    pub fn total_weight(&self) -> f64 {
        self.samples.iter().map(|(_, w)| *w).sum()
    }
}

/// An environment forecast covering the prediction horizon: one
/// [`EnvStep`] per future time step, index 0 being `ω̂(k)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast<E> {
    steps: Vec<EnvStep<E>>,
}

impl<E: Clone> Forecast<E> {
    /// Build a forecast from per-step scenario sets.
    pub fn new(steps: Vec<EnvStep<E>>) -> Self {
        Forecast { steps }
    }

    /// Build a purely deterministic forecast from nominal values.
    pub fn from_nominal(nominals: Vec<E>) -> Self {
        Forecast {
            steps: nominals.into_iter().map(EnvStep::certain).collect(),
        }
    }

    /// Number of forecast steps available.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the forecast holds no steps at all.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The scenario set for future step `q` (0-based).
    pub fn step(&self, q: usize) -> Option<&EnvStep<E>> {
        self.steps.get(q)
    }

    /// Iterate over the per-step scenario sets.
    pub fn iter(&self) -> std::slice::Iter<'_, EnvStep<E>> {
        self.steps.iter()
    }

    /// Validate that the forecast covers at least `horizon` steps and that
    /// no step has an empty sample set.
    ///
    /// # Errors
    ///
    /// [`Error::ForecastTooShort`] or [`Error::EmptyScenario`].
    pub fn validate(&self, horizon: usize) -> Result<(), Error> {
        if self.steps.len() < horizon {
            return Err(Error::ForecastTooShort {
                required: horizon,
                available: self.steps.len(),
            });
        }
        if self.steps.iter().any(|s| s.samples.is_empty()) {
            return Err(Error::EmptyScenario);
        }
        Ok(())
    }
}

impl<E> std::ops::Index<usize> for Forecast<E> {
    type Output = EnvStep<E>;
    fn index(&self, q: usize) -> &EnvStep<E> {
        &self.steps[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certain_step_has_single_unit_weight_sample() {
        let s = EnvStep::certain(3.5_f64);
        assert_eq!(s.samples.len(), 1);
        assert!((s.total_weight() - 1.0).abs() < 1e-12);
        assert_eq!(s.nominal, 3.5);
    }

    #[test]
    fn with_samples_rejects_empty() {
        assert_eq!(
            EnvStep::<f64>::with_samples(1.0, vec![]),
            Err(Error::EmptyScenario)
        );
    }

    #[test]
    fn with_samples_weights_equally() {
        let s = EnvStep::with_samples(2.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.samples.len(), 3);
        assert!((s.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_validate_checks_length() {
        let f = Forecast::from_nominal(vec![1.0, 2.0]);
        assert!(f.validate(2).is_ok());
        assert_eq!(
            f.validate(3),
            Err(Error::ForecastTooShort {
                required: 3,
                available: 2
            })
        );
    }

    #[test]
    fn forecast_indexing_and_iter() {
        let f = Forecast::from_nominal(vec![10.0, 20.0]);
        assert_eq!(f[1].nominal, 20.0);
        assert_eq!(f.iter().count(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.len(), 2);
        assert!(f.step(5).is_none());
    }
}
