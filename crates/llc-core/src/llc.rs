use crate::{Error, Forecast, Plant};

/// Statistics gathered during one lookahead decision.
///
/// These back the paper's control-overhead experiments (§4.3 reports the
/// L1 controller examining an average of 858 states per sampling period).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of predicted states expanded (nodes of the search tree).
    pub states_explored: usize,
    /// Number of subtrees cut by branch-and-bound pruning.
    pub pruned: usize,
}

impl SearchStats {
    /// Merge statistics from another search into this one.
    pub fn absorb(&mut self, other: SearchStats) {
        self.states_explored += other.states_explored;
        self.pruned += other.pruned;
    }
}

/// The outcome of one receding-horizon decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision<I> {
    /// The input to apply now — the first step of the optimal trajectory.
    pub input: I,
    /// The full minimizing input sequence over the horizon.
    pub sequence: Vec<I>,
    /// Cumulative expected cost of the minimizing trajectory.
    pub cost: f64,
    /// Search statistics for this decision.
    pub stats: SearchStats,
}

/// Exhaustive limited-lookahead controller with branch-and-bound pruning.
///
/// Implements the optimization of the paper's eq. (4):
///
/// ```text
/// min_{u(k..k+N)}  Σ J(x(q), u(q))   s.t.  x̂(q+1) = f(x(q), u(q), ω̂(q))
/// ```
///
/// The tree of all admissible input sequences is expanded from the current
/// state up to the horizon `N`; per-step costs are the *expected* cost over
/// the forecast's scenario samples (chattering mitigation), while the
/// trajectory advances along the nominal sample. Since all costs are
/// non-negative, partial sums that already exceed the incumbent best are
/// pruned.
///
/// The worst-case number of explored states is `Σ_{q=1..N} |U|^q`, which the
/// paper keeps small by construction (processors offer 6–10 frequencies,
/// horizons of 1–3 steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadController {
    horizon: usize,
}

impl LookaheadController {
    /// Create a controller with prediction horizon `horizon >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroHorizon`] if `horizon == 0`.
    pub fn new(horizon: usize) -> Result<Self, Error> {
        if horizon == 0 {
            return Err(Error::ZeroHorizon);
        }
        Ok(LookaheadController { horizon })
    }

    /// The prediction horizon `N`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Compute the optimal first input from state `x0`.
    ///
    /// `prev_input` is the input applied during the previous sampling
    /// period (for `‖Δu‖` switching penalties). The forecast must cover at
    /// least `N` steps.
    ///
    /// # Errors
    ///
    /// * [`Error::ForecastTooShort`] / [`Error::EmptyScenario`] if the
    ///   forecast cannot cover the horizon;
    /// * [`Error::EmptyInputSet`] if the plant offers no admissible input
    ///   in `x0`.
    pub fn decide<P: Plant>(
        &self,
        plant: &P,
        x0: &P::State,
        prev_input: Option<&P::Input>,
        forecast: &Forecast<P::Env>,
    ) -> Result<Decision<P::Input>, Error> {
        forecast.validate(self.horizon)?;

        let mut best: Option<(f64, Vec<P::Input>)> = None;
        let mut stats = SearchStats::default();
        let mut prefix: Vec<P::Input> = Vec::with_capacity(self.horizon);
        // One admissible-set buffer per depth, reused across the whole
        // tree: the search expands O(|U|^N) nodes and a heap allocation
        // per node would dominate cheap plants.
        let mut input_bufs: Vec<Vec<P::Input>> = (0..self.horizon).map(|_| Vec::new()).collect();

        self.search(
            plant,
            x0,
            prev_input,
            forecast,
            0,
            0.0,
            &mut prefix,
            &mut input_bufs,
            &mut best,
            &mut stats,
        )?;

        let (cost, sequence) = best.ok_or(Error::EmptyInputSet)?;
        let input = sequence.first().cloned().ok_or(Error::EmptyInputSet)?;
        Ok(Decision {
            input,
            sequence,
            cost,
            stats,
        })
    }

    /// Depth-first expansion of the input tree with pruning.
    #[allow(clippy::too_many_arguments)]
    fn search<P: Plant>(
        &self,
        plant: &P,
        x: &P::State,
        prev: Option<&P::Input>,
        forecast: &Forecast<P::Env>,
        depth: usize,
        acc: f64,
        prefix: &mut Vec<P::Input>,
        input_bufs: &mut [Vec<P::Input>],
        best: &mut Option<(f64, Vec<P::Input>)>,
        stats: &mut SearchStats,
    ) -> Result<(), Error> {
        if depth == self.horizon {
            if best.as_ref().is_none_or(|(c, _)| acc < *c) {
                *best = Some((acc, prefix.clone()));
            }
            return Ok(());
        }

        let (mine, deeper) = input_bufs
            .split_first_mut()
            .expect("one input buffer per depth");
        mine.clear();
        plant.admissible_into(x, mine);
        if mine.is_empty() {
            return Err(Error::EmptyInputSet);
        }
        let step = &forecast[depth];
        let total_w = step.total_weight();

        for u in mine.iter() {
            // Expected cost over the scenario samples; nominal successor
            // carries the trajectory forward.
            let mut expected = 0.0;
            for (w_env, weight) in &step.samples {
                let x_s = plant.step(x, u, w_env);
                expected += weight * plant.cost(&x_s, u, prev);
            }
            expected /= total_w;
            stats.states_explored += 1;

            let acc_next = acc + expected;
            if best.as_ref().is_some_and(|(c, _)| acc_next >= *c) {
                stats.pruned += 1;
                continue;
            }

            let x_nominal = plant.step(x, u, &step.nominal);
            prefix.push(u.clone());
            self.search(
                plant,
                &x_nominal,
                Some(u),
                forecast,
                depth + 1,
                acc_next,
                prefix,
                deeper,
                best,
                stats,
            )?;
            prefix.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnvStep;

    /// Scalar integrator: x' = x + u + w, cost |x' - 10| + 0.01|u|.
    struct Integrator;
    impl Plant for Integrator {
        type State = f64;
        type Input = i32;
        type Env = f64;
        fn admissible(&self, _x: &f64) -> Vec<i32> {
            vec![-2, -1, 0, 1, 2]
        }
        fn step(&self, x: &f64, u: &i32, w: &f64) -> f64 {
            x + f64::from(*u) + w
        }
        fn cost(&self, x: &f64, u: &i32, _prev: Option<&i32>) -> f64 {
            (x - 10.0).abs() + 0.01 * f64::from(u.abs())
        }
    }

    fn certain_forecast(n: usize) -> Forecast<f64> {
        Forecast::from_nominal(vec![0.0; n])
    }

    #[test]
    fn zero_horizon_is_rejected() {
        assert_eq!(LookaheadController::new(0), Err(Error::ZeroHorizon));
    }

    #[test]
    fn drives_toward_setpoint() {
        let c = LookaheadController::new(3).unwrap();
        let d = c
            .decide(&Integrator, &0.0, None, &certain_forecast(3))
            .unwrap();
        assert_eq!(d.input, 2, "far below set-point: push hard");
        let d = c
            .decide(&Integrator, &10.0, None, &certain_forecast(3))
            .unwrap();
        assert_eq!(d.input, 0, "at set-point: hold");
        let d = c
            .decide(&Integrator, &14.0, None, &certain_forecast(3))
            .unwrap();
        assert_eq!(d.input, -2, "above set-point: push down");
    }

    #[test]
    fn sequence_length_matches_horizon() {
        let c = LookaheadController::new(4).unwrap();
        let d = c
            .decide(&Integrator, &3.0, None, &certain_forecast(4))
            .unwrap();
        assert_eq!(d.sequence.len(), 4);
        assert_eq!(d.sequence[0], d.input);
    }

    #[test]
    fn forecast_shorter_than_horizon_errors() {
        let c = LookaheadController::new(3).unwrap();
        let err = c.decide(&Integrator, &0.0, None, &certain_forecast(2));
        assert_eq!(
            err.unwrap_err(),
            Error::ForecastTooShort {
                required: 3,
                available: 2
            }
        );
    }

    #[test]
    fn exhaustive_state_count_without_pruning_bound() {
        // With pruning disabled we cannot directly count, but explored +
        // pruned subtree roots must never exceed the exhaustive bound
        // Σ |U|^q and must be at least |U| (first level fully expanded).
        let c = LookaheadController::new(2).unwrap();
        let d = c
            .decide(&Integrator, &0.0, None, &certain_forecast(2))
            .unwrap();
        let full: usize = 5 + 5 * 5;
        assert!(d.stats.states_explored <= full);
        assert!(d.stats.states_explored >= 5);
    }

    #[test]
    fn pruning_never_changes_the_decision() {
        // Compare against a brute-force enumeration of all sequences.
        let c = LookaheadController::new(3).unwrap();
        for x0 in [-5.0, 0.0, 7.5, 10.0, 23.0] {
            let d = c
                .decide(&Integrator, &x0, None, &certain_forecast(3))
                .unwrap();
            let mut best = f64::INFINITY;
            let mut best_first = 0;
            let us = [-2, -1, 0, 1, 2];
            for a in us {
                for b in us {
                    for g in us {
                        let p = Integrator;
                        let x1 = p.step(&x0, &a, &0.0);
                        let x2 = p.step(&x1, &b, &0.0);
                        let x3 = p.step(&x2, &g, &0.0);
                        let cost = p.cost(&x1, &a, None)
                            + p.cost(&x2, &b, Some(&a))
                            + p.cost(&x3, &g, Some(&b));
                        if cost < best {
                            best = cost;
                            best_first = a;
                        }
                    }
                }
            }
            assert!((d.cost - best).abs() < 1e-9, "x0={x0}");
            assert_eq!(d.input, best_first, "x0={x0}");
        }
    }

    #[test]
    fn scenario_averaging_shifts_decision() {
        // A plant whose cost blows up for states above the set-point. An
        // uncertainty band that includes a high-drift sample should make
        // the controller more conservative than the nominal-only forecast.
        struct Asym;
        impl Plant for Asym {
            type State = f64;
            type Input = i32;
            type Env = f64;
            fn admissible(&self, _x: &f64) -> Vec<i32> {
                vec![0, 1, 2]
            }
            fn step(&self, x: &f64, u: &i32, w: &f64) -> f64 {
                x + f64::from(*u) + w
            }
            fn cost(&self, x: &f64, _u: &i32, _p: Option<&i32>) -> f64 {
                if *x > 10.0 {
                    100.0 * (x - 10.0)
                } else {
                    10.0 - x
                }
            }
        }
        let c = LookaheadController::new(1).unwrap();
        let nominal_only = Forecast::from_nominal(vec![0.0]);
        let d_nom = c.decide(&Asym, &8.0, None, &nominal_only).unwrap();
        assert_eq!(d_nom.input, 2, "nominal forecast fills the gap exactly");

        let band = Forecast::new(vec![
            EnvStep::with_samples(0.0, vec![-1.0, 0.0, 1.0]).unwrap()
        ]);
        let d_band = c.decide(&Asym, &8.0, None, &band).unwrap();
        assert_eq!(d_band.input, 1, "band-aware controller backs off");
    }

    #[test]
    fn switching_penalty_respects_prev_input() {
        // Plant with a pure switching cost: it should keep the previous
        // input when states are cost-equivalent.
        struct Sticky;
        impl Plant for Sticky {
            type State = f64;
            type Input = i32;
            type Env = ();
            fn admissible(&self, _x: &f64) -> Vec<i32> {
                vec![1, 2, 3]
            }
            fn step(&self, x: &f64, _u: &i32, _w: &()) -> f64 {
                *x
            }
            fn cost(&self, _x: &f64, u: &i32, prev: Option<&i32>) -> f64 {
                match prev {
                    Some(p) => f64::from((u - p).abs()),
                    None => 0.0,
                }
            }
        }
        let c = LookaheadController::new(2).unwrap();
        let f = Forecast::from_nominal(vec![(), ()]);
        let d = c.decide(&Sticky, &0.0, Some(&2), &f).unwrap();
        assert_eq!(d.input, 2);
        assert!(d.cost.abs() < 1e-12);
    }

    #[test]
    fn stats_absorb_adds_counters() {
        let mut a = SearchStats {
            states_explored: 3,
            pruned: 1,
        };
        a.absorb(SearchStats {
            states_explored: 5,
            pruned: 2,
        });
        assert_eq!(a.states_explored, 8);
        assert_eq!(a.pruned, 3);
    }
}
