//! Drift *detection* on top of drift tracking.
//!
//! The online learning path (see [`crate::online`]) makes the learned
//! models chase realized outcomes at a fixed forgetting rate. That rate
//! is a compromise: fast enough to re-converge after the plant changes,
//! slow enough not to chase per-period noise in steady state. This module
//! removes the compromise with a Page–Hinkley test over the stream of
//! online residuals (`realized − predicted`, normalized): in steady state
//! the learner runs at a slow rate, and when the test flags a sustained
//! mean shift the learner switches to a fast re-convergence rate for a
//! hold-off window. When detections stop being *local* — several firings
//! inside a short window, meaning the residual field is moving everywhere
//! the traffic goes rather than in one drifted cell — the detector
//! latches a [`DriftDetector::retrain_recommended`] signal: incremental
//! cell blending is no longer the right tool and an offline re-train
//! should be scheduled.
//!
//! The test is the classic two-sided Page–Hinkley/CUSUM form: cumulative
//! deviation of the residual from its running mean, less an
//! insensitivity margin `delta`, floored at zero; a drift is declared
//! when either side's accumulator exceeds `threshold`. Detection resets
//! the statistics so the test re-arms against the post-drift regime.

use std::collections::VecDeque;

/// Knobs of a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Page–Hinkley insensitivity margin: mean shifts smaller than this
    /// (in residual units) are treated as noise and never accumulate.
    pub delta: f64,
    /// Decision threshold `λ` on the cumulative deviation: larger values
    /// trade detection delay for a lower false-positive rate.
    pub threshold: f64,
    /// Samples to observe before the test is allowed to fire (the running
    /// mean needs a warm-up before deviations from it are meaningful).
    pub min_samples: u64,
    /// Samples the learner stays at the fast re-convergence rate after a
    /// detection before falling back to the steady-state rate.
    pub fast_hold: u64,
    /// Window (in samples) over which detections are counted for the
    /// re-train recommendation.
    pub retrain_window: u64,
    /// Detections within [`DetectorConfig::retrain_window`] that latch
    /// [`DriftDetector::retrain_recommended`]: repeated firings in a
    /// short window mean the drift is global, not a local cell gone
    /// stale. `0` disables the signal.
    pub retrain_detections: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Tuned for *normalized* residual streams
        // (`(realized − predicted)/max(1, |predicted|)`, the form every
        // learner in this workspace feeds): stationary noise keeps the
        // statistic near zero, while a sustained shift of ~0.15 — small
        // enough that the steady-rate learner would quietly absorb it —
        // still crosses the threshold within a few samples, before the
        // blending masks it.
        DetectorConfig {
            delta: 0.02,
            threshold: 0.3,
            min_samples: 8,
            fast_hold: 24,
            retrain_window: 96,
            retrain_detections: 3,
        }
    }
}

impl DetectorConfig {
    /// Validate the knob ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (negative or non-finite `delta`,
    /// non-positive `threshold`).
    pub fn validated(self) -> Self {
        assert!(
            self.delta >= 0.0 && self.delta.is_finite(),
            "delta must be finite and non-negative"
        );
        assert!(
            self.threshold > 0.0 && self.threshold.is_finite(),
            "threshold must be positive and finite"
        );
        self
    }
}

/// Which blend schedule the learner should run at (see
/// `llc_approx::BlendSchedule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnRate {
    /// Steady state: slow exponential forgetting, robust to noise.
    Steady,
    /// Re-convergence after a detected drift: aggressive blending.
    Fast,
}

/// Two-sided Page–Hinkley drift detector over a residual stream.
///
/// Feed one residual per learning update via [`DriftDetector::observe`];
/// consult [`DriftDetector::rate`] for the blend schedule to use and
/// [`DriftDetector::retrain_recommended`] for the offline re-train
/// signal.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DetectorConfig,
    /// Samples absorbed since the last reset.
    n: u64,
    /// Running mean of the residual since the last reset.
    mean: f64,
    /// Upward cumulative deviation (`max(0, Σ x − mean − δ)`).
    up: f64,
    /// Downward cumulative deviation (`max(0, Σ mean − x − δ)`).
    down: f64,
    /// Samples remaining at the fast rate.
    fast_left: u64,
    /// Lifetime samples observed (drives the retrain window).
    total: u64,
    /// Lifetime detections.
    detections: u64,
    /// Sample indices of recent detections (pruned to the window).
    recent: VecDeque<u64>,
    /// Latched once detections stop being local.
    retrain: bool,
}

impl DriftDetector {
    /// A detector with the given knobs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`DetectorConfig::validated`]).
    pub fn new(cfg: DetectorConfig) -> Self {
        let cfg = cfg.validated();
        DriftDetector {
            cfg,
            n: 0,
            mean: 0.0,
            up: 0.0,
            down: 0.0,
            fast_left: 0,
            total: 0,
            detections: 0,
            recent: VecDeque::new(),
            retrain: false,
        }
    }

    /// The knobs in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Absorb one residual. Returns `true` when this sample fired a
    /// drift detection (the statistics re-arm immediately after).
    pub fn observe(&mut self, residual: f64) -> bool {
        if !residual.is_finite() {
            return false; // a broken sample must not poison the test
        }
        self.total += 1;
        if self.fast_left > 0 {
            self.fast_left -= 1;
        }
        self.n += 1;
        self.mean += (residual - self.mean) / self.n as f64;
        self.up = (self.up + residual - self.mean - self.cfg.delta).max(0.0);
        self.down = (self.down + self.mean - residual - self.cfg.delta).max(0.0);

        let armed = self.n >= self.cfg.min_samples.max(1);
        let fired = armed && (self.up > self.cfg.threshold || self.down > self.cfg.threshold);
        if fired {
            self.detections += 1;
            self.fast_left = self.cfg.fast_hold;
            self.recent.push_back(self.total);
            // Re-arm against the post-drift regime: the old mean is
            // exactly what stopped being true.
            self.n = 0;
            self.mean = 0.0;
            self.up = 0.0;
            self.down = 0.0;
        }
        // Prune and evaluate the locality window.
        while self
            .recent
            .front()
            .is_some_and(|&t| self.total.saturating_sub(t) >= self.cfg.retrain_window)
        {
            self.recent.pop_front();
        }
        if self.cfg.retrain_detections > 0
            && self.recent.len() >= self.cfg.retrain_detections as usize
        {
            self.retrain = true;
        }
        fired
    }

    /// The blend schedule the learner should currently run at.
    pub fn rate(&self) -> LearnRate {
        if self.fast_left > 0 {
            LearnRate::Fast
        } else {
            LearnRate::Steady
        }
    }

    /// Lifetime drift detections.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Lifetime residuals observed.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// `true` once detections stopped being local (≥
    /// `retrain_detections` firings within `retrain_window` samples):
    /// the incremental learner is patching a model that is wrong
    /// everywhere, and an offline re-train should be scheduled. Latched
    /// until [`DriftDetector::acknowledge_retrain`].
    pub fn retrain_recommended(&self) -> bool {
        self.retrain
    }

    /// Clear the re-train latch (call after scheduling the re-train).
    pub fn acknowledge_retrain(&mut self) {
        self.retrain = false;
        self.recent.clear();
    }

    /// Re-arm the test against a freshly swapped model: the running
    /// statistics, fast-rate hold and re-train latch all restart from a
    /// clean slate (old residuals were measured against a model that no
    /// longer exists), while the lifetime `samples`/`detections`
    /// counters survive for reporting.
    pub fn rearm(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.up = 0.0;
        self.down = 0.0;
        self.fast_left = 0;
        self.acknowledge_retrain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn noise(rng_seed: u64, n: usize, amplitude: f64) -> Vec<f64> {
        // Deterministic bounded noise stream (triangle-ish via two draws).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        (0..n)
            .map(|_| amplitude * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0))
            .collect()
    }

    #[test]
    fn stationary_noise_does_not_fire() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        for x in noise(7, 2000, 0.05) {
            d.observe(x);
        }
        assert_eq!(d.detections(), 0, "steady noise must not trip the test");
        assert_eq!(d.rate(), LearnRate::Steady);
        assert!(!d.retrain_recommended());
    }

    #[test]
    fn step_is_detected_and_switches_rate() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        for x in noise(11, 100, 0.05) {
            assert!(!d.observe(x));
        }
        // The plant drifts: residuals jump by 0.5.
        let mut delay = None;
        for (k, x) in noise(13, 50, 0.05).into_iter().enumerate() {
            if d.observe(x + 0.5) {
                delay = Some(k);
                break;
            }
        }
        let delay = delay.expect("step must be detected");
        assert!(delay <= 10, "detection delay {delay} too long");
        assert_eq!(d.rate(), LearnRate::Fast);
        assert_eq!(d.detections(), 1);
    }

    #[test]
    fn downward_shift_detected_too() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        for x in noise(17, 100, 0.05) {
            d.observe(x);
        }
        let fired = noise(19, 50, 0.05).into_iter().any(|x| d.observe(x - 0.5));
        assert!(fired, "two-sided test must catch a downward shift");
    }

    #[test]
    fn fast_hold_expires_back_to_steady() {
        let cfg = DetectorConfig {
            fast_hold: 5,
            ..DetectorConfig::default()
        };
        let mut d = DriftDetector::new(cfg);
        for x in noise(23, 60, 0.02) {
            d.observe(x);
        }
        for x in noise(29, 30, 0.02) {
            if d.observe(x + 1.0) {
                break;
            }
        }
        assert_eq!(d.rate(), LearnRate::Fast);
        // Post-drift the stream is stationary again (around the new
        // level, but the detector re-armed on it): the hold expires.
        for x in noise(31, 5, 0.02) {
            d.observe(x + 1.0);
        }
        assert_eq!(d.rate(), LearnRate::Steady);
    }

    #[test]
    fn global_drift_latches_retrain() {
        let cfg = DetectorConfig {
            retrain_window: 200,
            retrain_detections: 3,
            ..DetectorConfig::default()
        };
        let mut d = DriftDetector::new(cfg);
        // A residual field that keeps moving: repeated level shifts, the
        // signature of a model wrong everywhere rather than one stale
        // cell.
        let mut level = 0.0;
        for (k, x) in noise(37, 400, 0.05).into_iter().enumerate() {
            if k % 40 == 0 {
                level += 0.6;
            }
            d.observe(x + level);
            if d.retrain_recommended() {
                break;
            }
        }
        assert!(d.retrain_recommended(), "repeated shifts must latch");
        assert!(d.detections() >= 3);
        d.acknowledge_retrain();
        assert!(!d.retrain_recommended());
    }

    /// The full retrain-latch lifecycle the `RetrainManager` consumes:
    /// latch on global drift, acknowledge (consume), and *re-latch* when
    /// a later drift episode is again non-local — a single historical
    /// episode must not pin the recommendation forever, and consuming it
    /// must not deafen the detector to the next one.
    #[test]
    fn latch_consume_relatch_cycle() {
        let cfg = DetectorConfig {
            retrain_window: 200,
            retrain_detections: 3,
            ..DetectorConfig::default()
        };
        let mut d = DriftDetector::new(cfg);
        let drive_until_latched = |d: &mut DriftDetector, seed: u64| {
            let mut level = 0.0;
            for (k, x) in noise(seed, 600, 0.05).into_iter().enumerate() {
                if k % 40 == 0 {
                    level += 0.6;
                }
                d.observe(x + level);
                if d.retrain_recommended() {
                    return;
                }
            }
            panic!("repeated shifts must latch");
        };
        drive_until_latched(&mut d, 41);
        assert!(d.retrain_recommended(), "episode 1 latches");
        let after_first = d.detections();

        // Consume: the latch clears and *stays* clear through a long
        // stationary stretch (post-consumption quiet must not re-latch
        // off the historical firings).
        d.acknowledge_retrain();
        assert!(!d.retrain_recommended(), "acknowledge consumes the latch");
        for x in noise(43, 300, 0.05) {
            d.observe(x);
        }
        assert!(
            !d.retrain_recommended(),
            "a single historical episode must not pin the recommendation"
        );

        // A second global-drift episode re-latches from scratch.
        drive_until_latched(&mut d, 47);
        assert!(d.retrain_recommended(), "episode 2 re-latches");
        assert!(d.detections() > after_first);

        // `rearm` (the hot-swap path) also consumes the latch and
        // restarts the running statistics, keeping lifetime counters.
        let lifetime = d.detections();
        d.rearm();
        assert!(!d.retrain_recommended());
        assert_eq!(d.detections(), lifetime);
        assert_eq!(d.rate(), LearnRate::Steady, "fast hold cleared");
    }

    #[test]
    fn non_finite_residuals_ignored() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        for _ in 0..50 {
            assert!(!d.observe(f64::NAN));
            assert!(!d.observe(f64::INFINITY));
        }
        assert_eq!(d.samples(), 0);
        assert_eq!(d.detections(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = DriftDetector::new(DetectorConfig {
            threshold: 0.0,
            ..DetectorConfig::default()
        });
    }

    proptest! {
        /// False-positive bound: over 512 samples of stationary noise at
        /// any amplitude up to the insensitivity margin, the default
        /// detector fires at most once (~0.2% per-sample rate even at
        /// the worst amplitude).
        #[test]
        fn false_positive_rate_bounded(
            seed in 0u64..1000,
            amplitude in 0.005f64..0.05,
        ) {
            let mut d = DriftDetector::new(DetectorConfig::default());
            let mut fired = 0u32;
            for x in noise(seed, 512, amplitude) {
                if d.observe(x) {
                    fired += 1;
                }
            }
            prop_assert!(
                fired <= 1,
                "{fired} detections on stationary noise (amplitude {amplitude})"
            );
        }

        /// Detection-delay bound: a step of at least 6× the noise
        /// amplitude is caught within 12 samples of its onset.
        #[test]
        fn step_detected_within_bound(
            seed in 0u64..1000,
            amplitude in 0.01f64..0.05,
            step in 0.3f64..1.5,
        ) {
            let mut d = DriftDetector::new(DetectorConfig::default());
            for x in noise(seed, 64, amplitude) {
                d.observe(x);
            }
            let mut delay = None;
            for (k, x) in noise(seed ^ 0xabcd, 40, amplitude).into_iter().enumerate() {
                if d.observe(x + step) {
                    delay = Some(k);
                    break;
                }
            }
            prop_assert!(
                delay.is_some_and(|k| k <= 12),
                "step {step} not detected in time (delay {delay:?})"
            );
        }

        /// Gap immunity: a telemetry blackout shows up here as a run of
        /// non-finite residuals of any length. None of them may fire,
        /// count as samples, or poison the running statistics — and a
        /// genuine mean shift *after* the gap must still be caught
        /// within the ordinary detection-delay bound (the gap re-arms
        /// nothing and breaks nothing).
        #[test]
        fn gap_streams_rearm_cleanly(
            seed in 0u64..1000,
            amplitude in 0.01f64..0.05,
            step in 0.3f64..1.5,
            gap_len in 1usize..64,
        ) {
            let mut d = DriftDetector::new(DetectorConfig::default());
            for x in noise(seed, 64, amplitude) {
                d.observe(x);
            }
            let (samples, detections) = (d.samples(), d.detections());

            // The blackout: every flavor of broken residual.
            for k in 0..gap_len {
                let bad = match k % 3 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => f64::NEG_INFINITY,
                };
                prop_assert!(!d.observe(bad), "a broken sample fired");
            }
            prop_assert_eq!(d.samples(), samples, "gap samples were counted");
            prop_assert_eq!(d.detections(), detections, "gap fired detections");

            // Post-gap shift still caught on time: the gap left the
            // statistics armed against the pre-gap regime.
            let mut delay = None;
            for (k, x) in noise(seed ^ 0x9a4, 40, amplitude).into_iter().enumerate() {
                if d.observe(x + step) {
                    delay = Some(k);
                    break;
                }
            }
            prop_assert!(
                delay.is_some_and(|k| k <= 12),
                "post-gap step {step} not detected in time (delay {delay:?})"
            );
        }
    }
}
