/// Common interface of all workload forecasters.
///
/// Controllers consume forecasts through this trait so the concrete model
/// (Kalman trend, ARIMA, EWMA) is an implementation detail that can be
/// swapped per experiment.
pub trait Forecaster {
    /// Absorb the newest observation.
    fn observe(&mut self, value: f64);

    /// Predict the next `horizon` values, index 0 being one step ahead.
    ///
    /// Implementations must not mutate their state.
    fn predict(&self, horizon: usize) -> Vec<f64>;

    /// Convenience one-step-ahead prediction.
    fn predict_one(&self) -> f64 {
        self.predict(1).first().copied().unwrap_or(f64::NAN)
    }

    /// Number of observations absorbed so far.
    fn observations(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial last-value forecaster for trait-level tests.
    struct Naive {
        last: f64,
        n: u64,
    }

    impl Forecaster for Naive {
        fn observe(&mut self, value: f64) {
            self.last = value;
            self.n += 1;
        }
        fn predict(&self, horizon: usize) -> Vec<f64> {
            vec![self.last; horizon]
        }
        fn observations(&self) -> u64 {
            self.n
        }
    }

    #[test]
    fn default_predict_one_uses_predict() {
        let mut f = Naive { last: 0.0, n: 0 };
        f.observe(7.0);
        assert_eq!(f.predict_one(), 7.0);
        assert_eq!(f.observations(), 1);
    }

    #[test]
    fn predict_zero_horizon_gives_nan_one_step() {
        let f = Naive { last: 3.0, n: 0 };
        assert_eq!(f.predict(0).len(), 0);
        assert_eq!(f.predict_one(), 3.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut f: Box<dyn Forecaster> = Box::new(Naive { last: 0.0, n: 0 });
        f.observe(1.5);
        assert_eq!(f.predict(2), vec![1.5, 1.5]);
    }
}
