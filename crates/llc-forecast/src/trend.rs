use crate::{Forecaster, KalmanFilter, Matrix};

/// Local-linear-trend forecaster — the paper's "ARIMA model, implemented
/// by a Kalman filter" for arrival-rate prediction.
///
/// Structural model (Harvey, *Forecasting, Structural Time Series Models
/// and the Kalman Filter*, the paper's ref. 16):
///
/// ```text
/// level(k+1) = level(k) + slope(k) + w_level
/// slope(k+1) = slope(k)            + w_slope
/// z(k)       = level(k)            + v
/// ```
///
/// Its reduced form is ARIMA(0,2,2), which tracks both the time-of-day
/// ramps and the level shifts of web workloads. Noise variances can be
/// given directly or tuned from a training prefix of the workload with
/// [`LocalLinearTrend::fit`], mirroring "parameters of the Kalman filter
/// were first tuned using an initial portion of the workload, and then
/// used to forecast the remainder".
#[derive(Debug, Clone, PartialEq)]
pub struct LocalLinearTrend {
    kf: KalmanFilter,
    observations: u64,
    /// Clamp predictions below at this value (arrival rates are >= 0).
    floor: Option<f64>,
}

impl LocalLinearTrend {
    /// Build with explicit noise variances.
    ///
    /// * `q_level`: process noise of the level component;
    /// * `q_slope`: process noise of the slope component;
    /// * `r`: observation noise.
    ///
    /// # Panics
    ///
    /// Panics if any variance is negative or non-finite, or if all three
    /// are zero (the filter would be degenerate).
    pub fn new(q_level: f64, q_slope: f64, r: f64) -> Self {
        for (name, v) in [("q_level", q_level), ("q_slope", q_slope), ("r", r)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and >= 0, got {v}"
            );
        }
        assert!(
            q_level > 0.0 || q_slope > 0.0 || r > 0.0,
            "at least one noise variance must be positive"
        );
        let kf = KalmanFilter::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::diagonal(&[q_level, q_slope]),
            Matrix::diagonal(&[r]),
            Matrix::column(&[0.0, 0.0]),
            // Diffuse prior: the first observations dominate.
            Matrix::diagonal(&[1e6, 1e6]),
        )
        .expect("trend filter dimensions are consistent by construction");
        LocalLinearTrend {
            kf,
            observations: 0,
            floor: None,
        }
    }

    /// Reasonable defaults for web-workload arrival counts: fast level
    /// adaptation, slow slope adaptation.
    pub fn with_default_noise() -> Self {
        LocalLinearTrend::new(10.0, 0.1, 100.0)
    }

    /// Clamp all predictions from below (e.g. at 0 for rates).
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Grid-search noise variances minimizing one-step-ahead squared error
    /// on `training`, then return a fresh filter *already warmed up* on the
    /// training data.
    ///
    /// The observation variance is pinned to the sample variance of the
    /// one-step differences (a standard scale anchor) while the two process
    /// noises sweep a log grid around it.
    ///
    /// # Panics
    ///
    /// Panics if `training` has fewer than 8 points.
    pub fn fit(training: &[f64]) -> Self {
        assert!(training.len() >= 8, "need at least 8 training points");
        let diffs: Vec<f64> = training.windows(2).map(|w| w[1] - w[0]).collect();
        let mean_d = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let var_d = diffs.iter().map(|d| (d - mean_d).powi(2)).sum::<f64>() / diffs.len() as f64;
        let r = var_d.max(1e-6);

        let ratios = [1e-3, 1e-2, 1e-1, 1.0, 10.0];
        let mut best: Option<(f64, f64, f64)> = None; // (sse, q_level, q_slope)
        for &rl in &ratios {
            for &rs in &ratios {
                let q_level = rl * r;
                let q_slope = rs * r * 0.01;
                let mut f = LocalLinearTrend::new(q_level, q_slope, r);
                let mut sse = 0.0;
                for &z in training {
                    if f.observations >= 2 {
                        let pred = f.predict_one();
                        sse += (pred - z).powi(2);
                    }
                    f.observe(z);
                }
                if best.is_none_or(|(s, _, _)| sse < s) {
                    best = Some((sse, q_level, q_slope));
                }
            }
        }
        let (_, q_level, q_slope) = best.expect("grid is non-empty");
        let mut fitted = LocalLinearTrend::new(q_level, q_slope, r);
        for &z in training {
            fitted.observe(z);
        }
        fitted
    }

    /// The current level estimate.
    pub fn level(&self) -> f64 {
        self.kf.state().get(0, 0)
    }

    /// The current slope estimate.
    pub fn slope(&self) -> f64 {
        self.kf.state().get(1, 0)
    }

    fn clamp(&self, v: f64) -> f64 {
        match self.floor {
            Some(fl) => v.max(fl),
            None => v,
        }
    }
}

impl Forecaster for LocalLinearTrend {
    fn observe(&mut self, value: f64) {
        // Ignore non-finite samples rather than poisoning the filter: a
        // forecast blackout should degrade, not crash, the controller.
        if !value.is_finite() {
            return;
        }
        self.kf
            .step_scalar(value)
            .expect("scalar observation model by construction");
        self.observations += 1;
    }

    fn predict(&self, horizon: usize) -> Vec<f64> {
        self.kf
            .forecast_observations(horizon)
            .into_iter()
            .map(|m| self.clamp(m.get(0, 0)))
            .collect()
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tracks_linear_ramp() {
        let mut f = LocalLinearTrend::with_default_noise();
        for k in 0..100 {
            f.observe(5.0 * k as f64 + 20.0);
        }
        assert!((f.slope() - 5.0).abs() < 0.5);
        let p = f.predict(4);
        let last = 5.0 * 99.0 + 20.0;
        for (i, v) in p.iter().enumerate() {
            let expect = last + 5.0 * (i as f64 + 1.0);
            assert!((v - expect).abs() < 2.0, "step {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn tracks_constant_signal_with_near_zero_slope() {
        let mut f = LocalLinearTrend::with_default_noise();
        for _ in 0..200 {
            f.observe(400.0);
        }
        assert!((f.level() - 400.0).abs() < 1.0);
        assert!(f.slope().abs() < 0.1);
    }

    #[test]
    fn floor_clamps_predictions() {
        let mut f = LocalLinearTrend::with_default_noise().with_floor(0.0);
        // Steep downward ramp crossing zero.
        for k in 0..50 {
            f.observe(100.0 - 10.0 * k as f64);
        }
        let p = f.predict(5);
        assert!(p.iter().all(|&v| v >= 0.0));
        assert_eq!(p[4], 0.0, "deep extrapolation clamps to the floor");
    }

    #[test]
    fn nonfinite_observations_are_ignored() {
        let mut f = LocalLinearTrend::with_default_noise();
        for _ in 0..50 {
            f.observe(100.0);
        }
        let before = f.predict_one();
        f.observe(f64::NAN);
        f.observe(f64::INFINITY);
        assert_eq!(f.observations(), 50);
        assert!((f.predict_one() - before).abs() < 1e-9);
    }

    #[test]
    fn fit_beats_default_on_noisy_ramp() {
        // Deterministic pseudo-noise so the test is stable.
        let noise = |k: usize| ((k * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let series: Vec<f64> = (0..200)
            .map(|k| 1000.0 + 3.0 * k as f64 + 80.0 * noise(k))
            .collect();
        let fitted = LocalLinearTrend::fit(&series[..120]);
        let mut default = LocalLinearTrend::with_default_noise();
        for &z in &series[..120] {
            default.observe(z);
        }
        let mut err_fit = 0.0;
        let mut err_def = 0.0;
        let mut ff = fitted;
        let mut fd = default;
        for &z in &series[120..] {
            err_fit += (ff.predict_one() - z).powi(2);
            err_def += (fd.predict_one() - z).powi(2);
            ff.observe(z);
            fd.observe(z);
        }
        assert!(
            err_fit <= err_def * 1.5,
            "fitted ({err_fit:.1}) should not be much worse than default ({err_def:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn fit_needs_enough_data() {
        let _ = LocalLinearTrend::fit(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn negative_variance_panics() {
        let _ = LocalLinearTrend::new(-1.0, 0.1, 1.0);
    }

    proptest! {
        #[test]
        fn predictions_are_finite(values in proptest::collection::vec(0.0..1e5f64, 10..80)) {
            let mut f = LocalLinearTrend::with_default_noise();
            for v in &values {
                f.observe(*v);
            }
            for p in f.predict(5) {
                prop_assert!(p.is_finite());
            }
        }
    }
}
