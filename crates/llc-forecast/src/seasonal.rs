use crate::{Forecaster, LocalLinearTrend};

/// Seasonal-plus-trend forecaster for periodic workloads.
///
/// Web traffic repeats daily (the WC'98 trace's "time-of-day variations");
/// a pure trend filter keeps re-learning every morning what it forgot
/// every night. This forecaster decomposes the signal into a per-phase
/// seasonal profile (one EWMA cell per position in the period) and a
/// residual tracked by a [`LocalLinearTrend`]:
///
/// ```text
/// z(k) = s(k mod P) + r(k)
/// ```
///
/// Predictions add the stored profile of the target phase to the
/// extrapolated residual. Until one full period has been observed the
/// forecaster behaves like the plain trend filter (profile zero).
#[derive(Debug, Clone)]
pub struct SeasonalTrend {
    period: usize,
    /// Per-phase profile values and observation counts.
    profile: Vec<f64>,
    seen: Vec<u64>,
    /// Smoothing for profile updates.
    alpha: f64,
    residual: LocalLinearTrend,
    observations: u64,
    floor: Option<f64>,
}

impl SeasonalTrend {
    /// A forecaster with `period` phases and profile smoothing
    /// `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `alpha` is outside `(0, 1]`.
    pub fn new(period: usize, alpha: f64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        SeasonalTrend {
            period,
            profile: vec![0.0; period],
            seen: vec![0; period],
            alpha,
            residual: LocalLinearTrend::with_default_noise(),
            observations: 0,
            floor: None,
        }
    }

    /// Clamp predictions from below.
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// The seasonal period in samples.
    pub fn period(&self) -> usize {
        self.period
    }

    /// The learned profile value of phase `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= period`.
    pub fn profile(&self, p: usize) -> f64 {
        self.profile[p]
    }

    fn clamp(&self, v: f64) -> f64 {
        match self.floor {
            Some(fl) => v.max(fl),
            None => v,
        }
    }

    /// Profile stand-in for phases never observed: the mean of the seen
    /// phases (0.0 before any observation). Keeps first-cycle predictions
    /// at the workload's level instead of at zero.
    fn fallback_profile(&self) -> f64 {
        let (sum, n) = self
            .profile
            .iter()
            .zip(&self.seen)
            .filter(|(_, &s)| s > 0)
            .fold((0.0, 0u64), |(acc, n), (&v, _)| (acc + v, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl Forecaster for SeasonalTrend {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let phase = (self.observations % self.period as u64) as usize;
        // Residual against the *pre-update* profile (the prediction this
        // sample would have received).
        let baseline = if self.seen[phase] > 0 {
            self.profile[phase]
        } else {
            self.fallback_profile()
        };
        self.residual.observe(value - baseline);
        if self.seen[phase] == 0 {
            self.profile[phase] = value;
        } else {
            self.profile[phase] = self.alpha * value + (1.0 - self.alpha) * self.profile[phase];
        }
        self.seen[phase] += 1;
        self.observations += 1;
    }

    fn predict(&self, horizon: usize) -> Vec<f64> {
        let residuals = self.residual.predict(horizon);
        (0..horizon)
            .map(|h| {
                let phase = ((self.observations + h as u64) % self.period as u64) as usize;
                // Unseen phases fall back to the mean of seen phases.
                let seasonal = if self.seen[phase] > 0 {
                    self.profile[phase]
                } else {
                    self.fallback_profile()
                };
                self.clamp(seasonal + residuals[h])
            })
            .collect()
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean daily pattern: the forecaster should predict tomorrow's
    /// phase from today's profile.
    #[test]
    fn learns_periodic_profile() {
        let mut f = SeasonalTrend::new(24, 0.5).with_floor(0.0);
        let day = |h: usize| 100.0 + 50.0 * ((h as f64 / 24.0) * std::f64::consts::TAU).sin();
        for k in 0..24 * 10 {
            f.observe(day(k % 24));
        }
        // Predict the next 24 hours and compare phase by phase.
        let pred = f.predict(24);
        for (h, p) in pred.iter().enumerate() {
            let expect = day(h % 24);
            assert!(
                (p - expect).abs() < 8.0,
                "phase {h}: predicted {p:.1}, expected {expect:.1}"
            );
        }
    }

    #[test]
    fn beats_plain_trend_on_sharp_diurnal_swings() {
        let day = |h: usize| {
            if (8..18).contains(&(h % 24)) {
                1000.0
            } else {
                100.0
            }
        };
        let mut seasonal = SeasonalTrend::new(24, 0.3);
        let mut trend = LocalLinearTrend::with_default_noise();
        let mut err_s = 0.0;
        let mut err_t = 0.0;
        for k in 0..24 * 8 {
            let z = day(k);
            if k >= 24 * 4 {
                err_s += (seasonal.predict_one() - z).abs();
                err_t += (trend.predict_one() - z).abs();
            }
            seasonal.observe(z);
            trend.observe(z);
        }
        assert!(
            err_s < err_t * 0.5,
            "seasonal ({err_s:.0}) should halve the trend error ({err_t:.0})"
        );
    }

    #[test]
    fn cold_start_behaves_like_trend() {
        let mut f = SeasonalTrend::new(48, 0.2);
        for _ in 0..5 {
            f.observe(200.0);
        }
        let p = f.predict_one();
        assert!(p.is_finite());
        assert_eq!(f.observations(), 5);
    }

    #[test]
    fn floor_applies() {
        let mut f = SeasonalTrend::new(4, 0.5).with_floor(0.0);
        for k in 0..16 {
            f.observe(100.0 - 10.0 * k as f64);
        }
        assert!(f.predict(8).iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        let _ = SeasonalTrend::new(0, 0.5);
    }
}
