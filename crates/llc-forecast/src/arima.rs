use crate::{Forecaster, KalmanFilter, Matrix};
use std::collections::VecDeque;

/// ARIMA(p, d, 0) forecaster in state-space form, run by a Kalman filter.
///
/// The AR coefficients are fitted online by the Yule-Walker equations over
/// a sliding window of the `d`-times-differenced series; the fitted AR(p)
/// process is then placed in companion state-space form and filtered. The
/// paper (ref. 10, Box & Jenkins) uses an ARIMA model for load arrivals;
/// this type provides the general family while [`LocalLinearTrend`]
/// (reduced-form ARIMA(0,2,2)) is the tuned default used in the
/// experiments.
///
/// [`LocalLinearTrend`]: crate::LocalLinearTrend
#[derive(Debug, Clone)]
pub struct Arima {
    p: usize,
    d: usize,
    window: usize,
    /// Raw observations (bounded to `window + d`).
    history: VecDeque<f64>,
    observations: u64,
    floor: Option<f64>,
}

impl Arima {
    /// An ARIMA(p, d, 0) model refitted over a sliding `window` of
    /// differenced samples.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`, `d > 2` or `window < 4 * p`.
    pub fn new(p: usize, d: usize, window: usize) -> Self {
        assert!(p >= 1, "AR order must be at least 1");
        assert!(d <= 2, "differencing order above 2 is not supported");
        assert!(window >= 4 * p, "window must hold at least 4·p samples");
        Arima {
            p,
            d,
            window,
            history: VecDeque::new(),
            observations: 0,
            floor: None,
        }
    }

    /// Clamp all predictions from below.
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }

    /// AR order `p`.
    pub fn order(&self) -> usize {
        self.p
    }

    /// Differencing order `d`.
    pub fn differencing(&self) -> usize {
        self.d
    }

    /// The `d`-times-differenced history.
    fn differenced(&self) -> Vec<f64> {
        let mut series: Vec<f64> = self.history.iter().copied().collect();
        for _ in 0..self.d {
            series = series.windows(2).map(|w| w[1] - w[0]).collect();
        }
        series
    }

    /// Fit AR(p) coefficients by solving the Yule-Walker equations on the
    /// autocovariances of `series`. Returns `None` when the series is too
    /// short or the Toeplitz system is singular (e.g. constant series).
    fn fit_ar(&self, series: &[f64]) -> Option<Vec<f64>> {
        if series.len() < 2 * self.p + 2 {
            return None;
        }
        let n = series.len();
        let mean = series.iter().sum::<f64>() / n as f64;
        let cov = |lag: usize| -> f64 {
            (0..n - lag)
                .map(|t| (series[t] - mean) * (series[t + lag] - mean))
                .sum::<f64>()
                / n as f64
        };
        let c0 = cov(0);
        if c0 < 1e-12 {
            return None; // constant series: AR degenerate, caller falls back
        }
        // Toeplitz system R a = r with R[i][j] = cov(|i-j|), r[i] = cov(i+1).
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.p);
        for i in 0..self.p {
            let row: Vec<f64> = (0..self.p).map(|j| cov(i.abs_diff(j))).collect();
            rows.push(row);
        }
        let r_mat = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let rhs = Matrix::column(&(1..=self.p).map(cov).collect::<Vec<_>>());
        let coeffs = r_mat.inverse().ok()?.matmul(&rhs).ok()?;
        Some((0..self.p).map(|i| coeffs.get(i, 0)).collect())
    }

    /// Forecast the differenced series `horizon` steps ahead using the
    /// fitted AR model in companion form with a Kalman smoothing pass.
    fn forecast_differenced(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
        let Some(coeffs) = self.fit_ar(series) else {
            // Fallback: persistence of the mean of the differenced series.
            return vec![mean; horizon];
        };

        // Companion-form transition for the centered AR(p) process.
        let p = self.p;
        let mut f_rows: Vec<Vec<f64>> = Vec::with_capacity(p);
        f_rows.push(coeffs.clone());
        for i in 1..p {
            let mut row = vec![0.0; p];
            row[i - 1] = 1.0;
            f_rows.push(row);
        }
        let f = Matrix::from_rows(&f_rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let mut h_row = vec![0.0; p];
        h_row[0] = 1.0;
        let h = Matrix::from_rows(&[h_row.as_slice()]);

        let mut kf = KalmanFilter::new(
            f,
            h,
            Matrix::diagonal(&vec![1.0; p]),
            Matrix::diagonal(&[1.0]),
            Matrix::column(&vec![0.0; p]),
            Matrix::diagonal(&vec![1e4; p]),
        )
        .expect("companion form dimensions are consistent");
        for &z in series {
            kf.step_scalar(z - mean)
                .expect("scalar observation by construction");
        }
        kf.forecast_observations(horizon)
            .into_iter()
            .map(|m| m.get(0, 0) + mean)
            .collect()
    }

    fn clamp(&self, v: f64) -> f64 {
        match self.floor {
            Some(fl) => v.max(fl),
            None => v,
        }
    }
}

impl Forecaster for Arima {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.history.push_back(value);
        while self.history.len() > self.window + self.d {
            self.history.pop_front();
        }
        self.observations += 1;
    }

    fn predict(&self, horizon: usize) -> Vec<f64> {
        if horizon == 0 {
            return Vec::new();
        }
        if self.history.is_empty() {
            return vec![0.0; horizon];
        }
        let last = *self.history.back().expect("non-empty");
        if self.history.len() < self.d + 2 {
            return vec![self.clamp(last); horizon];
        }

        let series = self.differenced();
        let diff_fc = self.forecast_differenced(&series, horizon);

        // Integrate the differenced forecasts back d times.
        match self.d {
            0 => diff_fc.into_iter().map(|v| self.clamp(v)).collect(),
            1 => {
                let mut level = last;
                diff_fc
                    .into_iter()
                    .map(|d1| {
                        level += d1;
                        self.clamp(level)
                    })
                    .collect()
            }
            2 => {
                let hist: Vec<f64> = self.history.iter().copied().collect();
                let mut d1 = hist[hist.len() - 1] - hist[hist.len() - 2];
                let mut level = last;
                diff_fc
                    .into_iter()
                    .map(|d2| {
                        d1 += d2;
                        level += d1;
                        self.clamp(level)
                    })
                    .collect()
            }
            _ => unreachable!("constructor bounds d <= 2"),
        }
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar1_process_is_recovered() {
        // x(k+1) = 0.8 x(k) + white noise (seeded for determinism).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut x = 0.0;
        let mut model = Arima::new(1, 0, 400);
        let mut series = Vec::new();
        for _ in 0..400 {
            x = 0.8 * x + rng.gen_range(-1.0..1.0);
            series.push(x);
            model.observe(x);
        }
        let coeffs = model.fit_ar(&model.differenced()).expect("fit succeeds");
        assert!(
            (coeffs[0] - 0.8).abs() < 0.15,
            "estimated AR coefficient {:.3} should be near 0.8",
            coeffs[0]
        );
    }

    #[test]
    fn random_walk_with_drift_tracked_by_d1() {
        // x(k) = x(k-1) + 5: first difference is constant 5.
        let mut m = Arima::new(1, 1, 60);
        let mut x = 100.0;
        for _ in 0..100 {
            x += 5.0;
            m.observe(x);
        }
        let p = m.predict(3);
        // Constant differenced series short-circuits to persistence.
        for (i, v) in p.iter().enumerate() {
            let expect = x + 5.0 * (i as f64 + 1.0);
            assert!(
                (v - expect).abs() < 2.0,
                "step {i}: predicted {v}, expected {expect}"
            );
        }
    }

    #[test]
    fn quadratic_growth_tracked_by_d2() {
        let mut m = Arima::new(1, 2, 80);
        for k in 0..120 {
            m.observe((k * k) as f64);
        }
        let p = m.predict(2);
        let expect1 = (120 * 120) as f64;
        assert!(
            (p[0] - expect1).abs() / expect1 < 0.05,
            "predicted {} vs {expect1}",
            p[0]
        );
    }

    #[test]
    fn cold_start_predicts_last_value() {
        let mut m = Arima::new(2, 1, 20);
        m.observe(42.0);
        assert_eq!(m.predict(3), vec![42.0, 42.0, 42.0]);
    }

    #[test]
    fn empty_model_predicts_zero() {
        let m = Arima::new(1, 0, 10);
        assert_eq!(m.predict(2), vec![0.0, 0.0]);
        assert_eq!(m.predict(0).len(), 0);
    }

    #[test]
    fn floor_applies() {
        let mut m = Arima::new(1, 1, 20).with_floor(0.0);
        let mut x = 50.0;
        for _ in 0..40 {
            x -= 10.0;
            m.observe(x);
        }
        assert!(m.predict(5).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn window_bounds_history() {
        let mut m = Arima::new(1, 0, 8);
        for k in 0..100 {
            m.observe(k as f64);
        }
        assert!(m.history.len() <= 8 + m.d);
        assert_eq!(m.observations(), 100);
    }

    #[test]
    #[should_panic(expected = "AR order")]
    fn zero_order_panics() {
        let _ = Arima::new(0, 0, 10);
    }
}
