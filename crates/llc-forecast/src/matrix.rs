use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Errors from matrix operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch,
    /// The matrix is singular (or numerically too close to singular).
    Singular,
    /// The operation requires a square matrix.
    NotSquare,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch => write!(f, "matrix dimensions are incompatible"),
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::NotSquare => write!(f, "operation requires a square matrix"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A small dense row-major matrix of `f64`.
///
/// Sized for Kalman-filter state dimensions (2–10); all operations are
/// `O(n³)` or better and allocate freshly, which is irrelevant at this
/// scale and keeps the API simple.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A diagonal matrix from the given entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Build from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// A column vector.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) + a * rhs.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Entry-wise sum.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimensionMismatch`] on shape mismatch.
    pub fn plus(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MatrixError::DimensionMismatch);
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Entry-wise difference.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimensionMismatch`] on shape mismatch.
    pub fn minus(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MatrixError::DimensionMismatch);
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Inverse by Gauss-Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`MatrixError::NotSquare`] if the matrix is not square;
    /// * [`MatrixError::Singular`] if a pivot collapses below `1e-12` of
    ///   the largest row element.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Partial pivot: largest |a[r][col]| for r >= col.
            let mut pivot = col;
            let mut pivot_val = a.get(col, col).abs();
            for r in (col + 1)..n {
                let v = a.get(r, col).abs();
                if v > pivot_val {
                    pivot = r;
                    pivot_val = v;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let d = a.get(col, col);
            for c in 0..n {
                a.set(col, c, a.get(col, c) / d);
                inv.set(col, c, inv.get(col, c) / d);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0.0 {
                    continue;
                }
                for c in 0..n {
                    a.set(r, c, a.get(r, c) - factor * a.get(col, c));
                    inv.set(r, c, inv.get(r, c) - factor * inv.get(col, c));
                }
            }
        }
        Ok(inv)
    }

    /// Force exact symmetry by averaging with the transpose (used to stop
    /// covariance drift in long Kalman runs).
    pub fn symmetrize(&self) -> Matrix {
        self.plus(&self.transpose())
            .expect("transpose has same shape")
            .scale(0.5)
    }

    /// `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::plus`] for a fallible form.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.plus(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::minus`] for a fallible form.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.minus(rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::matmul`] for a fallible form.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix product shape mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&i * &a, a);
        assert_eq!(&a * &i, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert_eq!(a.matmul(&b).unwrap_err(), MatrixError::DimensionMismatch);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn inverse_of_known_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        for r in 0..2 {
            for c in 0..2 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod.get(r, c) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_requires_square() {
        assert_eq!(
            Matrix::zeros(2, 3).inverse().unwrap_err(),
            MatrixError::NotSquare
        );
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.inverse().unwrap_err(), MatrixError::Singular);
    }

    #[test]
    fn inverse_with_pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert_eq!(inv, a, "a permutation is its own inverse");
    }

    #[test]
    fn diagonal_and_column_constructors() {
        let d = Matrix::diagonal(&[2.0, 3.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        let v = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let s = a.symmetrize();
        assert_eq!(s.get(0, 1), s.get(1, 0));
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(format!("{a}").contains("1.000000"));
    }

    proptest! {
        #[test]
        fn inverse_roundtrip_for_well_conditioned(
            a in -5.0..5.0f64, b in -5.0..5.0f64,
            c in -5.0..5.0f64,
        ) {
            // Diagonally dominant 2x2 matrices are invertible.
            let m = Matrix::from_rows(&[&[10.0 + a.abs(), b], &[c, 10.0 + a.abs()]]);
            let inv = m.inverse().unwrap();
            let prod = &m * &inv;
            for r in 0..2 {
                for cc in 0..2 {
                    let expect = if r == cc { 1.0 } else { 0.0 };
                    prop_assert!((prod.get(r, cc) - expect).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn matmul_associative(
            vals in proptest::collection::vec(-3.0..3.0f64, 12)
        ) {
            let a = Matrix::from_rows(&[&vals[0..2], &vals[2..4]]);
            let b = Matrix::from_rows(&[&vals[4..6], &vals[6..8]]);
            let c = Matrix::from_rows(&[&vals[8..10], &vals[10..12]]);
            let left = &(&a * &b) * &c;
            let right = &a * &(&b * &c);
            for r in 0..2 {
                for cc in 0..2 {
                    prop_assert!((left.get(r, cc) - right.get(r, cc)).abs() < 1e-9);
                }
            }
        }
    }
}
