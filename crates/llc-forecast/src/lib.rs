//! Forecasting substrate for the hierarchical LLC framework.
//!
//! The paper estimates future environment inputs with two filters:
//!
//! * an **ARIMA model implemented by a Kalman filter** predicts request
//!   arrival rates `λ̂` at every level of the control hierarchy, and
//! * an **exponentially-weighted moving average (EWMA)** with smoothing
//!   constant `π = 0.1` predicts per-request processing times `ĉ`.
//!
//! This crate implements both from scratch — there is no external linear
//! algebra or statistics dependency:
//!
//! * [`Matrix`]: small dense row-major matrices with Gauss-Jordan inversion;
//! * [`KalmanFilter`]: the general linear-Gaussian filter (predict/update,
//!   Joseph-form covariance update, multi-step forecasting);
//! * [`LocalLinearTrend`]: a level+slope structural model (the state-space
//!   equivalent of ARIMA(0,2,2)) with data-driven noise tuning, mirroring
//!   the paper's "parameters of the Kalman filter were first tuned using an
//!   initial portion of the workload";
//! * [`Arima`]: AR(p) / ARIMA(p,d,0) models in state-space form fitted by
//!   Yule-Walker, run through the same Kalman machinery;
//! * [`Ewma`]: the processing-time filter;
//! * [`Forecaster`]: the common observe/predict interface consumed by the
//!   controllers, plus [`AccuracyStats`] for tracking forecast error (the
//!   source of the chattering-mitigation band `δ`).
//!
//! # Example
//!
//! ```
//! use llc_forecast::{Forecaster, LocalLinearTrend};
//!
//! let mut f = LocalLinearTrend::with_default_noise();
//! for k in 0..50 {
//!     f.observe(10.0 + 2.0 * k as f64); // a clean linear ramp
//! }
//! let ahead = f.predict(3);
//! assert!((ahead[0] - 110.0).abs() < 1.0);
//! assert!((ahead[2] - 114.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arima;
mod error_stats;
mod ewma;
mod kalman;
mod matrix;
mod seasonal;
mod traits;
mod trend;

pub use arima::Arima;
pub use error_stats::AccuracyStats;
pub use ewma::Ewma;
pub use kalman::KalmanFilter;
pub use matrix::{Matrix, MatrixError};
pub use seasonal::SeasonalTrend;
pub use traits::Forecaster;
pub use trend::LocalLinearTrend;
