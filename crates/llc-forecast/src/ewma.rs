use crate::Forecaster;

/// Exponentially-weighted moving-average filter.
///
/// The paper estimates per-request processing time with
/// `ĉ(k+1) = π·c(k) + (1−π)·ĉ(k)` using smoothing constant `π = 0.1`
/// (§4.3). Predictions at any horizon equal the current smoothed value —
/// the EWMA is a level-only model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    pi: f64,
    estimate: f64,
    observations: u64,
}

impl Ewma {
    /// A filter with smoothing constant `pi ∈ (0, 1]` — the weight of the
    /// *newest* sample.
    ///
    /// # Panics
    ///
    /// Panics if `pi` lies outside `(0, 1]`.
    pub fn new(pi: f64) -> Self {
        assert!(
            pi > 0.0 && pi <= 1.0,
            "smoothing constant must be in (0, 1], got {pi}"
        );
        Ewma {
            pi,
            estimate: 0.0,
            observations: 0,
        }
    }

    /// The paper's processing-time filter (`π = 0.1`).
    pub fn paper_default() -> Self {
        Ewma::new(0.1)
    }

    /// The smoothing constant π.
    pub fn smoothing(&self) -> f64 {
        self.pi
    }

    /// Current smoothed estimate (0.0 before any observation).
    pub fn estimate(&self) -> f64 {
        self.estimate
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.observations == 0 {
            self.estimate = value;
        } else {
            self.estimate = self.pi * value + (1.0 - self.pi) * self.estimate;
        }
        self.observations += 1;
    }

    fn predict(&self, horizon: usize) -> Vec<f64> {
        vec![self.estimate; horizon]
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.1);
        e.observe(15.0);
        assert_eq!(e.estimate(), 15.0);
    }

    #[test]
    fn smoothing_formula_matches_paper() {
        let mut e = Ewma::new(0.1);
        e.observe(10.0);
        e.observe(20.0);
        // 0.1 * 20 + 0.9 * 10 = 11
        assert!((e.estimate() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant() {
        let mut e = Ewma::paper_default();
        for _ in 0..300 {
            e.observe(17.5);
        }
        assert!((e.estimate() - 17.5).abs() < 1e-9);
    }

    #[test]
    fn predict_is_flat_at_estimate() {
        let mut e = Ewma::new(0.5);
        e.observe(4.0);
        e.observe(8.0);
        let p = e.predict(3);
        assert_eq!(p, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn nonfinite_ignored() {
        let mut e = Ewma::new(0.2);
        e.observe(10.0);
        e.observe(f64::NAN);
        assert_eq!(e.estimate(), 10.0);
        assert_eq!(e.observations(), 1);
    }

    #[test]
    #[should_panic(expected = "smoothing constant")]
    fn invalid_pi_panics() {
        let _ = Ewma::new(1.5);
    }

    proptest! {
        #[test]
        fn estimate_bounded_by_input_range(
            values in proptest::collection::vec(5.0..25.0f64, 1..100)
        ) {
            // Processing times drawn from U(10,25) ms keep the EWMA inside
            // the sample range — a convexity invariant.
            let mut e = Ewma::paper_default();
            for v in &values {
                e.observe(*v);
            }
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.estimate() >= lo - 1e-9);
            prop_assert!(e.estimate() <= hi + 1e-9);
        }
    }
}
