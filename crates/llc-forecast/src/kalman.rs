use crate::{Matrix, MatrixError};

/// A general linear-Gaussian Kalman filter.
///
/// Model:
///
/// ```text
/// x(k+1) = F x(k) + w,   w ~ N(0, Q)
/// z(k)   = H x(k) + v,   v ~ N(0, R)
/// ```
///
/// The covariance update uses the Joseph form
/// `P = (I−KH) P (I−KH)ᵀ + K R Kᵀ`, which preserves symmetry and positive
/// semi-definiteness over long runs — the filter tracks an entire day of
/// 30-second workload samples in the experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    f: Matrix,
    h: Matrix,
    q: Matrix,
    r: Matrix,
    x: Matrix,
    p: Matrix,
}

impl KalmanFilter {
    /// Build a filter from system matrices and the initial state/covariance.
    ///
    /// Dimensions: `F: n×n`, `H: m×n`, `Q: n×n`, `R: m×m`, `x0: n×1`,
    /// `P0: n×n`.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimensionMismatch`] if any shape disagrees.
    pub fn new(
        f: Matrix,
        h: Matrix,
        q: Matrix,
        r: Matrix,
        x0: Matrix,
        p0: Matrix,
    ) -> Result<Self, MatrixError> {
        let n = f.rows();
        let m = h.rows();
        if f.cols() != n
            || h.cols() != n
            || q.rows() != n
            || q.cols() != n
            || r.rows() != m
            || r.cols() != m
            || x0.rows() != n
            || x0.cols() != 1
            || p0.rows() != n
            || p0.cols() != n
        {
            return Err(MatrixError::DimensionMismatch);
        }
        Ok(KalmanFilter {
            f,
            h,
            q,
            r,
            x: x0,
            p: p0,
        })
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.f.rows()
    }

    /// Current state estimate `x̂`.
    pub fn state(&self) -> &Matrix {
        &self.x
    }

    /// Current estimate covariance `P`.
    pub fn covariance(&self) -> &Matrix {
        &self.p
    }

    /// Time update: propagate the estimate one step without a measurement.
    pub fn predict(&mut self) {
        self.x = &self.f * &self.x;
        self.p = (&(&self.f * &self.p) * &self.f.transpose())
            .plus(&self.q)
            .expect("shape");
        self.p = self.p.symmetrize();
    }

    /// Measurement update with observation vector `z` (m×1).
    ///
    /// # Errors
    ///
    /// * [`MatrixError::DimensionMismatch`] if `z` is not m×1;
    /// * [`MatrixError::Singular`] if the innovation covariance cannot be
    ///   inverted.
    pub fn update(&mut self, z: &Matrix) -> Result<(), MatrixError> {
        if z.rows() != self.h.rows() || z.cols() != 1 {
            return Err(MatrixError::DimensionMismatch);
        }
        let y = z.minus(&(&self.h * &self.x))?; // innovation
        let s = (&(&self.h * &self.p) * &self.h.transpose()).plus(&self.r)?;
        let k = &(&self.p * &self.h.transpose()) * &s.inverse()?;
        self.x = self.x.plus(&(&k * &y))?;
        let i_kh = &Matrix::identity(self.state_dim()) - &(&k * &self.h);
        // Joseph form keeps P symmetric PSD.
        let a = &(&i_kh * &self.p) * &i_kh.transpose();
        let b = &(&k * &self.r) * &k.transpose();
        self.p = a.plus(&b)?.symmetrize();
        Ok(())
    }

    /// Convenience: predict then update with a scalar observation.
    ///
    /// # Errors
    ///
    /// Same as [`KalmanFilter::update`]; additionally requires a scalar
    /// observation model (`m == 1`).
    pub fn step_scalar(&mut self, z: f64) -> Result<(), MatrixError> {
        if self.h.rows() != 1 {
            return Err(MatrixError::DimensionMismatch);
        }
        self.predict();
        self.update(&Matrix::column(&[z]))
    }

    /// Expected observation `H x̂` for the current state.
    pub fn observation(&self) -> Matrix {
        &self.h * &self.x
    }

    /// Forecast the next `horizon` observations by iterating the time
    /// update on a copy of the filter (the filter itself is unchanged).
    pub fn forecast_observations(&self, horizon: usize) -> Vec<Matrix> {
        let mut scratch = self.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            scratch.predict();
            out.push(scratch.observation());
        }
        out
    }

    /// Innovation variance `S = H P Hᵀ + R` for a scalar observation model.
    ///
    /// # Panics
    ///
    /// Panics if the observation is not scalar.
    pub fn innovation_variance(&self) -> f64 {
        assert_eq!(self.h.rows(), 1, "scalar observation model required");
        let s = (&(&self.h * &self.p) * &self.h.transpose())
            .plus(&self.r)
            .expect("shape");
        s.get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random-walk filter: F=H=[1], tracks a constant in noise.
    fn random_walk(q: f64, r: f64) -> KalmanFilter {
        KalmanFilter::new(
            Matrix::identity(1),
            Matrix::identity(1),
            Matrix::diagonal(&[q]),
            Matrix::diagonal(&[r]),
            Matrix::column(&[0.0]),
            Matrix::diagonal(&[100.0]),
        )
        .unwrap()
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut kf = random_walk(1e-4, 1.0);
        for _ in 0..200 {
            kf.step_scalar(42.0).unwrap();
        }
        assert!((kf.state().get(0, 0) - 42.0).abs() < 0.1);
    }

    #[test]
    fn covariance_shrinks_with_observations() {
        let mut kf = random_walk(1e-4, 1.0);
        let p0 = kf.covariance().get(0, 0);
        for _ in 0..10 {
            kf.step_scalar(5.0).unwrap();
        }
        assert!(kf.covariance().get(0, 0) < p0);
    }

    #[test]
    fn covariance_stays_symmetric_and_nonnegative() {
        // 2-state trend filter under alternating observations.
        let mut kf = KalmanFilter::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::diagonal(&[0.1, 0.01]),
            Matrix::diagonal(&[1.0]),
            Matrix::column(&[0.0, 0.0]),
            Matrix::diagonal(&[10.0, 10.0]),
        )
        .unwrap();
        for k in 0..500 {
            kf.step_scalar(if k % 2 == 0 { 10.0 } else { -10.0 })
                .unwrap();
            let p = kf.covariance();
            assert!((p.get(0, 1) - p.get(1, 0)).abs() < 1e-9, "symmetry");
            assert!(p.get(0, 0) >= 0.0 && p.get(1, 1) >= 0.0, "diagonal PSD");
            assert!(p.is_finite());
        }
    }

    #[test]
    fn forecast_extrapolates_trend() {
        let mut kf = KalmanFilter::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::diagonal(&[0.01, 0.001]),
            Matrix::diagonal(&[0.5]),
            Matrix::column(&[0.0, 0.0]),
            Matrix::diagonal(&[100.0, 100.0]),
        )
        .unwrap();
        for k in 0..100 {
            kf.step_scalar(3.0 * k as f64).unwrap(); // slope 3 ramp
        }
        let fc = kf.forecast_observations(3);
        assert_eq!(fc.len(), 3);
        let last_obs = 3.0 * 99.0;
        assert!((fc[0].get(0, 0) - (last_obs + 3.0)).abs() < 1.0);
        assert!((fc[2].get(0, 0) - (last_obs + 9.0)).abs() < 1.5);
        // Forecasting must not mutate the filter.
        assert!((kf.observation().get(0, 0) - last_obs).abs() < 1.0);
    }

    #[test]
    fn dimension_checks() {
        let bad = KalmanFilter::new(
            Matrix::identity(2),
            Matrix::from_rows(&[&[1.0]]), // H: 1x1 but n=2
            Matrix::identity(2),
            Matrix::identity(1),
            Matrix::column(&[0.0, 0.0]),
            Matrix::identity(2),
        );
        assert_eq!(bad.unwrap_err(), MatrixError::DimensionMismatch);

        let mut kf = random_walk(0.1, 1.0);
        let err = kf.update(&Matrix::column(&[1.0, 2.0])).unwrap_err();
        assert_eq!(err, MatrixError::DimensionMismatch);
    }

    #[test]
    fn innovation_variance_positive() {
        let kf = random_walk(0.1, 1.0);
        assert!(kf.innovation_variance() > 0.0);
    }
}
