/// Online forecast-accuracy accumulator.
///
/// Tracks mean absolute error (the paper's `δ` band source), RMSE and mean
/// absolute percentage error over (actual, forecast) pairs, without storing
/// the series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccuracyStats {
    n: u64,
    abs_sum: f64,
    sq_sum: f64,
    pct_sum: f64,
    pct_n: u64,
}

impl AccuracyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        AccuracyStats::default()
    }

    /// Record one (actual, forecast) pair. Non-finite pairs are ignored.
    pub fn record(&mut self, actual: f64, forecast: f64) {
        if !actual.is_finite() || !forecast.is_finite() {
            return;
        }
        let err = actual - forecast;
        self.n += 1;
        self.abs_sum += err.abs();
        self.sq_sum += err * err;
        if actual.abs() > 1e-12 {
            self.pct_sum += (err / actual).abs();
            self.pct_n += 1;
        }
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean absolute error, or 0.0 before any observation.
    pub fn mae(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.abs_sum / self.n as f64
        }
    }

    /// Root-mean-square error, or 0.0 before any observation.
    pub fn rmse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sq_sum / self.n as f64).sqrt()
        }
    }

    /// Mean absolute percentage error over pairs with non-zero actuals,
    /// or 0.0 if there were none.
    pub fn mape(&self) -> f64 {
        if self.pct_n == 0 {
            0.0
        } else {
            self.pct_sum / self.pct_n as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn absorb(&mut self, other: &AccuracyStats) {
        self.n += other.n;
        self.abs_sum += other.abs_sum;
        self.sq_sum += other.sq_sum;
        self.pct_sum += other.pct_sum;
        self.pct_n += other.pct_n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = AccuracyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mae(), 0.0);
        assert_eq!(s.rmse(), 0.0);
        assert_eq!(s.mape(), 0.0);
    }

    #[test]
    fn known_errors() {
        let mut s = AccuracyStats::new();
        s.record(10.0, 8.0); // err 2
        s.record(10.0, 14.0); // err -4
        assert_eq!(s.count(), 2);
        assert!((s.mae() - 3.0).abs() < 1e-12);
        assert!((s.rmse() - (10.0f64).sqrt()).abs() < 1e-12);
        assert!((s.mape() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_actual_skips_mape_only() {
        let mut s = AccuracyStats::new();
        s.record(0.0, 5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mape(), 0.0);
        assert_eq!(s.mae(), 5.0);
    }

    #[test]
    fn nonfinite_pairs_ignored() {
        let mut s = AccuracyStats::new();
        s.record(f64::NAN, 1.0);
        s.record(1.0, f64::INFINITY);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn absorb_equals_sequential() {
        let mut a = AccuracyStats::new();
        let mut b = AccuracyStats::new();
        let mut whole = AccuracyStats::new();
        for (act, fc) in [(10.0, 9.0), (20.0, 25.0), (30.0, 28.0), (40.0, 44.0)] {
            whole.record(act, fc);
        }
        a.record(10.0, 9.0);
        a.record(20.0, 25.0);
        b.record(30.0, 28.0);
        b.record(40.0, 44.0);
        a.absorb(&b);
        assert_eq!(a, whole);
    }

    proptest! {
        #[test]
        fn rmse_at_least_mae(pairs in proptest::collection::vec((0.1..1e3f64, 0.0..1e3f64), 1..50)) {
            // Jensen: RMSE >= MAE always.
            let mut s = AccuracyStats::new();
            for (a, f) in pairs {
                s.record(a, f);
            }
            prop_assert!(s.rmse() + 1e-9 >= s.mae());
        }
    }
}
