//! Drift integration: when delivered capacity degrades mid-run, an
//! online-updated model tracks the plant better than the offline-only
//! one — on both map substrates, and through the full L1 record/learn
//! wiring as well as the L2 residual layer.

use llc_cluster::{
    AbstractionMap, FrequencyProfile, GEntry, L0Config, L0Controller, L1Config, L1Controller,
    LearnSpec, MapBackend, MemberSpec,
};
use llc_core::OnlineConfig;
use llc_workload::{drift_scenarios, DriftScenario};

fn member() -> MemberSpec {
    MemberSpec::paper_default(FrequencyProfile::TallEight)
}

fn learn_map(spec: &MemberSpec, backend: MapBackend) -> AbstractionMap {
    AbstractionMap::learn_for_member(
        &L0Config::paper_default(),
        spec,
        LearnSpec::coarse(),
        backend,
    )
}

/// Prequential tracking error of offline-only vs online-updated maps
/// over one drift scenario (every bucket = one L1 period; truth from the
/// analytic L0 model at the drifted effective service time).
fn tracking_errors(scenario: &DriftScenario, backend: MapBackend, spec: &MemberSpec) -> (f64, f64) {
    let l0 = L0Config::paper_default();
    let offline = learn_map(spec, backend);
    let mut online = offline.clone();
    let cfg = OnlineConfig::default();
    let c = spec.c_prior;
    let mut q = 0.0f64;
    let (mut off_err, mut on_err) = (0.0, 0.0);
    for k in 0..scenario.trace.len() {
        let lambda = scenario.trace.rate(k);
        let scale = scenario.scale_at(k);
        let (cost, power, final_q) =
            L0Controller::simulate_model(&l0, &spec.phis, q, lambda, c / scale, 4);
        let truth = GEntry {
            cost,
            power,
            final_q,
        };
        off_err += (offline.query(lambda, c, q).cost - truth.cost).abs();
        on_err += (online.query(lambda, c, q).cost - truth.cost).abs();
        online.update_online(lambda, c, q, truth, &cfg);
        q = truth.final_q;
    }
    let n = scenario.trace.len() as f64;
    (off_err / n, on_err / n)
}

#[test]
fn online_tracking_beats_offline_when_capacity_degrades_midrun() {
    let spec = member();
    let peak_rate = 0.45 / spec.c_prior;
    let scenarios = drift_scenarios(42, 120, 120.0, peak_rate);
    // The headline case: post-failure capacity step at mid-run. The
    // gradual ramp must hold too (two scenarios, per the acceptance bar).
    for name in ["post-failure-capacity", "gradual-degradation"] {
        let scenario = scenarios
            .iter()
            .find(|s| s.name == name)
            .expect("scenario exists");
        for backend in [MapBackend::Dense, MapBackend::Hash] {
            let (offline_mae, online_mae) = tracking_errors(scenario, backend, &spec);
            assert!(
                online_mae < offline_mae,
                "{name}/{backend:?}: online MAE {online_mae:.4} must beat \
                 offline MAE {offline_mae:.4}"
            );
        }
    }
}

#[test]
fn l1_controller_wiring_adapts_its_maps_under_drift() {
    let spec = member();
    let l0 = L0Config::paper_default();
    let offline = learn_map(&spec, MapBackend::Dense);
    let mut l1 = L1Controller::new(
        L1Config::paper_default(),
        vec![spec.clone()],
        vec![offline.clone()],
    );
    l1.enable_online(OnlineConfig::default());
    let c = spec.c_prior;
    let lambda = 0.3 / c; // steady 30% of nominal capacity
    let scale = 0.65; // machine degraded post-failure
    let mut q = 0.0f64;
    for _ in 0..30 {
        l1.observe((lambda * 120.0) as u64, &[Some(c)]);
        let d = l1.decide(&[q.round() as usize], &[true]);
        let routed = d.gamma[0] * lambda;
        let (cost, power, final_q) =
            L0Controller::simulate_model(&l0, &spec.phis, q, routed, c / scale, 4);
        l1.record_outcome(
            0,
            routed,
            q,
            GEntry {
                cost,
                power,
                final_q,
            },
        );
        assert_eq!(l1.learn_online(), 1);
        q = final_q;
    }
    assert_eq!(l1.online_updates(), 30);
    // After the adaptation loop, the *controller's own map* must predict
    // the degraded plant better than the untouched offline map does, at
    // the standing operating point the loop kept visiting.
    let (true_cost, _, _) = L0Controller::simulate_model(&l0, &spec.phis, q, lambda, c / scale, 4);
    let offline_err = (offline.query(lambda, c, q).cost - true_cost).abs();
    let adapted_err = (l1.map(0).query(lambda, c, q).cost - true_cost).abs();
    assert!(
        adapted_err < offline_err,
        "controller's adapted map (err {adapted_err:.4}) must beat the \
         offline map (err {offline_err:.4})"
    );
}
