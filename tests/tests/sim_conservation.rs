//! Property test: the simulator never loses or invents requests, no
//! matter what (valid) action sequence a controller throws at it —
//! arrivals = completions + still-queued + explicitly dropped, always.

use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    PowerOn(usize),
    PowerOff(usize),
    SetFrequency(usize, usize),
    SetWeights(Vec<f64>),
    Arrivals(u8),
}

fn op_strategy(n: usize, freqs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n).prop_map(Op::PowerOn),
        (0..n).prop_map(Op::PowerOff),
        ((0..n), (0..freqs)).prop_map(|(c, f)| Op::SetFrequency(c, f)),
        proptest::collection::vec(0.0..1.0f64, n).prop_map(Op::SetWeights),
        (0u8..40).prop_map(Op::Arrivals),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_are_conserved_under_random_control(
        ops in proptest::collection::vec(op_strategy(3, 2), 1..60)
    ) {
        let cfg = ClusterConfig {
            modules: vec![(0..3)
                .map(|_| {
                    ComputerConfig::new(
                        vec![1.0e9, 2.0e9],
                        PowerModel::paper_default(),
                        45.0,
                    )
                })
                .collect()],
        };
        let mut sim = ClusterSim::new(cfg);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[1.0, 1.0, 1.0]).unwrap();
        sim.power_on(0);

        let mut injected: u64 = 0;
        let mut now = 0.0;
        for op in &ops {
            match op {
                Op::PowerOn(i) => sim.power_on(*i),
                Op::PowerOff(i) => sim.power_off(*i),
                Op::SetFrequency(i, f) => sim.set_frequency(*i, *f),
                Op::SetWeights(w) => {
                    sim.set_computer_weights(0, w).unwrap();
                }
                Op::Arrivals(k) => {
                    for j in 0..*k {
                        sim.schedule_arrival(now + f64::from(j) * 0.1, 0.01).unwrap();
                    }
                    injected += u64::from(*k);
                }
            }
            now += 5.0;
            sim.run_until(now).unwrap();
        }
        // Long drain so everything that can complete does.
        sim.power_on(0);
        sim.run_until(now + 10_000.0).unwrap();

        let stats = sim.drain_computer_stats();
        let completed: u64 = stats.iter().map(|w| w.completions).sum();
        let queued: u64 = (0..3).map(|i| sim.computer(i).queue_length() as u64).sum();
        prop_assert_eq!(
            injected,
            completed + queued + sim.dropped(),
            "conservation violated: injected {} vs completed {} + queued {} + dropped {}",
            injected, completed, queued, sim.dropped()
        );
        // Energy must be finite and non-negative whatever happened.
        prop_assert!(sim.total_energy().is_finite());
        prop_assert!(sim.total_energy() >= 0.0);
    }
}
