//! End-to-end smoke test: the full three-level hierarchy drives a
//! single-module cluster through a load swing.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{Trace, VirtualStore};

#[test]
fn hierarchy_single_module_smoke() {
    let scenario = single_module(4).with_coarse_learning();
    let mut policy = HierarchicalPolicy::build(&scenario);
    // 40 ticks of 30 s: 20 req/s, a 5× step up, then back down. The step
    // is deliberately brutal — it exercises recruitment under overload.
    let counts: Vec<f64> = (0..40)
        .map(|k| {
            let rate = if k < 10 {
                20.0
            } else if k < 25 {
                100.0
            } else {
                25.0
            };
            rate * 30.0
        })
        .collect();
    let trace = Trace::new(30.0, counts).unwrap();
    let store = VirtualStore::paper_default(3);
    let exp = Experiment::paper_default(17);
    let log = exp
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();

    assert_eq!(s.total_dropped, 0, "nothing should be dropped");
    assert!(
        s.total_completions > s.total_arrivals * 9 / 10,
        "{} of {} completed",
        s.total_completions,
        s.total_arrivals
    );

    // The controller must react to the step: more machines during the
    // surge than in the light-load phase.
    let active = policy.active_history();
    let light: usize = active
        .iter()
        .filter(|(t, _)| (4..10).contains(t))
        .map(|(_, a)| *a)
        .min()
        .unwrap();
    let surge: usize = active
        .iter()
        .filter(|(t, _)| (12..26).contains(t))
        .map(|(_, a)| *a)
        .max()
        .unwrap();
    assert!(
        surge > light,
        "surge must recruit machines: light {light}, surge {surge}"
    );

    // After the surge drains (last 10 ticks), responses are back at the
    // target.
    let late: Vec<f64> = log
        .ticks
        .iter()
        .filter(|t| t.tick >= 30)
        .filter_map(|t| t.mean_response)
        .collect();
    let late_mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(
        late_mean < 4.0,
        "steady state must satisfy r* = 4 s, got {late_mean:.2}"
    );

    // The transient is bounded: the worst window mean stays below the
    // backlog-hoarding regime we would get without boot-aware routing.
    let worst = log
        .ticks
        .iter()
        .filter_map(|t| t.mean_response)
        .fold(0.0, f64::max);
    assert!(worst < 40.0, "worst transient window {worst:.1}");
}
