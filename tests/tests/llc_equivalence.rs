//! Property test: the branch-and-bound lookahead controller returns the
//! exact optimum of the brute-force enumeration on randomized finite
//! plants — pruning is an optimization, never an approximation.

use llc_core::{Forecast, LookaheadController, Plant};
use proptest::prelude::*;

/// A randomized finite plant: S states, U inputs, deterministic mixing
/// transition, arbitrary non-negative cost table.
struct TablePlant {
    states: usize,
    inputs: usize,
    costs: Vec<f64>, // indexed state * inputs + input
}

impl Plant for TablePlant {
    type State = usize;
    type Input = usize;
    type Env = ();

    fn admissible(&self, _x: &usize) -> Vec<usize> {
        (0..self.inputs).collect()
    }
    fn step(&self, x: &usize, u: &usize, _w: &()) -> usize {
        (x.wrapping_mul(31).wrapping_add(u * 7 + 1)) % self.states
    }
    fn cost(&self, x_next: &usize, u: &usize, _prev: Option<&usize>) -> f64 {
        self.costs[(x_next * self.inputs + u) % self.costs.len()]
    }
}

fn brute_force(plant: &TablePlant, x0: usize, horizon: usize) -> f64 {
    fn rec(plant: &TablePlant, x: usize, depth: usize) -> f64 {
        if depth == 0 {
            return 0.0;
        }
        (0..plant.inputs)
            .map(|u| {
                let xn = plant.step(&x, &u, &());
                plant.cost(&xn, &u, None) + rec(plant, xn, depth - 1)
            })
            .fold(f64::INFINITY, f64::min)
    }
    rec(plant, x0, horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lookahead_matches_brute_force(
        states in 2usize..8,
        inputs in 1usize..5,
        horizon in 1usize..4,
        x0 in 0usize..8,
        costs in proptest::collection::vec(0.0..100.0f64, 8 * 5),
    ) {
        let plant = TablePlant { states, inputs, costs };
        let x0 = x0 % states;
        let controller = LookaheadController::new(horizon).unwrap();
        let forecast = Forecast::from_nominal(vec![(); horizon]);
        let decision = controller.decide(&plant, &x0, None, &forecast).unwrap();
        let optimum = brute_force(&plant, x0, horizon);
        prop_assert!(
            (decision.cost - optimum).abs() < 1e-9,
            "pruned search returned {} but the optimum is {}",
            decision.cost,
            optimum
        );
        // The reported sequence must actually achieve the reported cost.
        let mut x = x0;
        let mut replay = 0.0;
        for u in &decision.sequence {
            let xn = plant.step(&x, u, &());
            replay += plant.cost(&xn, u, None);
            x = xn;
        }
        prop_assert!((replay - decision.cost).abs() < 1e-9);
    }
}
