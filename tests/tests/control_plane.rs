//! The control-plane API end to end: the `Experiment`-driven lockstep
//! loop and a hand-rolled ingest/emit loop over the same `SimAdapter`
//! must produce bit-identical directive sequences and tracking MAEs
//! (the golden equivalence of the API split), and the one metrics
//! surface must report every self-healing subsystem's counters during a
//! faulted, drifting run.

use llc_cluster::{
    single_module, ClusterPolicy, ControlPlane, Directive, DirectiveEmit, DirectiveKind,
    Experiment, ExperimentLog, FaultToleranceConfig, HierarchicalPolicy, Level, ObservationIngest,
    PolicyBuilder, RetrainConfig, ScenarioConfig, SimAdapter,
};
use llc_core::OnlineConfig;
use llc_workload::{
    derive_seed, drift_scenarios, fault_scenarios, spread_arrivals, CapacityProfile, FaultEvent,
    FaultKind, FaultPlan, RequestSampler, Trace, VirtualStore,
};
use rand::SeedableRng;

/// Drive `policy` over the ingest/emit API by hand — no `Experiment` —
/// against the same plant, workload and injectors `Experiment::run`
/// uses, returning every directive drained.
fn run_by_hand(
    exp: &Experiment,
    sc: &ScenarioConfig,
    policy: &mut HierarchicalPolicy,
    trace: &Trace,
    store: &VirtualStore,
) -> Vec<Directive> {
    let ticks_trace = trace.rebucket(exp.t_l0).expect("well-formed trace");
    let total_ticks = ticks_trace.len();
    let mut adapter = SimAdapter::new(sc.to_sim_config(), exp, total_ticks);
    if exp.prewarmed {
        adapter.prewarm().expect("well-formed cluster");
    }
    let mut sampler = RequestSampler::paper_default(store, exp.seed);
    let mut spread_rng = rand::rngs::StdRng::seed_from_u64(derive_seed(exp.seed, 0xA121));
    let mut plane = ControlPlane::new(&mut *policy, adapter.members().to_vec(), exp.t_l0);
    let mut all = Vec::new();
    for tick in 0..total_ticks as u64 {
        for observation in adapter.observe(tick) {
            plane.ingest(observation).expect("fresh in-order stream");
        }
        let _ = plane.step();
        let directives = plane.drain_directives();
        adapter
            .actuate(&directives)
            .expect("well-formed directives");
        all.extend(directives);
        let t = tick as f64 * exp.t_l0;
        let count = ticks_trace.count(tick as usize).round().max(0.0) as usize;
        for at in spread_arrivals(&mut spread_rng, t, exp.t_l0, count) {
            let (_, demand) = sampler.next_request();
            adapter.schedule_arrival(at, demand).expect("in-window");
        }
        adapter.advance_window(tick).expect("well-formed run");
    }
    all
}

fn assert_equivalent(
    log: &ExperimentLog,
    hand: &[Directive],
    a: &HierarchicalPolicy,
    b: &HierarchicalPolicy,
) {
    assert_eq!(
        log.directives.len(),
        hand.len(),
        "directive counts must match"
    );
    assert_eq!(
        log.directives, hand,
        "directive sequences must be bit-identical"
    );
    assert_eq!(
        a.tracking_error(),
        b.tracking_error(),
        "tracking MAEs must be bit-identical"
    );
    assert_eq!(a.tracking_samples(), b.tracking_samples());
    assert_eq!(a.online_updates(), b.online_updates());
}

/// Golden equivalence, closed-loop bench family: the capacity-step
/// drift scenario under the in-hierarchy closed loop.
#[test]
fn experiment_and_hand_rolled_loop_agree_closed_loop() {
    let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
    sc.l1.min_active = 2;
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenario = &drift_scenarios(0xC105ED, 40, 120.0, 0.55 * capacity)[2];
    let exp = Experiment {
        drift: Some(scenario.capacity),
        ..Experiment::paper_default(0xBEEF)
    };
    let store = VirtualStore::paper_default(0xBEEF);

    let mut via_exp = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .build();
    let log = exp
        .run(sc.to_sim_config(), &mut via_exp, &scenario.trace, &store)
        .expect("well-formed scenario");

    let mut by_hand = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .build();
    let hand = run_by_hand(&exp, &sc, &mut by_hand, &scenario.trace, &store);

    assert_equivalent(&log, &hand, &via_exp, &by_hand);
    assert!(!log.directives.is_empty());
}

/// Golden equivalence, faults bench family: the crash-restart scenario
/// under the watchdog'd closed loop.
#[test]
fn experiment_and_hand_rolled_loop_agree_faults() {
    let sc = single_module(4).with_coarse_learning().with_hash_maps();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let fs = fault_scenarios(0xFA11, 60, 120.0, capacity, 4).swap_remove(0);
    let exp = Experiment {
        faults: Some(fs.plan.clone()),
        ..Experiment::paper_default(5)
    };
    let store = VirtualStore::paper_default(5);

    let mut via_exp = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .build();
    let log = exp
        .run(sc.to_sim_config(), &mut via_exp, &fs.trace, &store)
        .expect("well-formed scenario");

    let mut by_hand = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .build();
    let hand = run_by_hand(&exp, &sc, &mut by_hand, &fs.trace, &store);

    assert_equivalent(&log, &hand, &via_exp, &by_hand);
    assert_eq!(via_exp.member_deaths(), by_hand.member_deaths());
    assert_eq!(via_exp.safe_mode_periods(), by_hand.safe_mode_periods());
}

/// The one metrics surface: during a faulted, drifting run of the full
/// self-healing stack, `MetricsSnapshot` must report drift detections,
/// rebuilds, member deaths/recoveries and safe-mode periods — without
/// reaching into any subsystem struct.
#[test]
fn metrics_snapshot_reports_every_subsystem() {
    let sc = single_module(4).with_coarse_learning().with_hash_maps();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    // The control_plane example's schedule: crash-restart plus a 3-of-4
    // blackout (quorum loss → safe mode) plus a silent capacity step
    // (drift detections → retrain → rebuilds).
    let fs = fault_scenarios(0xFA11, 90, 120.0, capacity, 4).swap_remove(0);
    let mut events = fs.plan.events().to_vec();
    for computer in 1..4 {
        events.push(FaultEvent {
            tick: 240,
            computer,
            kind: FaultKind::BlackoutStart,
        });
        events.push(FaultEvent {
            tick: 256,
            computer,
            kind: FaultKind::BlackoutEnd,
        });
    }
    let exp = Experiment {
        drift: Some(CapacityProfile::Step {
            at: 0.55,
            before: 1.0,
            after: 0.55,
        }),
        faults: Some(FaultPlan::new(events)),
        ..Experiment::paper_default(0xBEEF)
    };
    let store = VirtualStore::paper_default(5);
    let mut policy = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .retrain(RetrainConfig::default())
        .drift_aware_l0()
        .build();
    let log = exp
        .run(sc.to_sim_config(), &mut policy, &fs.trace, &store)
        .expect("well-formed scenario");

    let m = &log.metrics;
    assert_eq!(m.ticks_decided, log.ticks.len() as u64);
    assert_eq!(
        m.observations_ingested, m.ticks_decided,
        "one module, one obs per tick"
    );
    assert_eq!(m.stale_observations, 0);
    assert_eq!(
        m.dark_filled_members, 0,
        "the adapter reports dark members in-stream"
    );
    assert_eq!(m.directives_emitted as usize, log.directives.len());
    assert_eq!(m.decide.decisions, m.ticks_decided);
    assert!(m.decide.max >= m.decide.mean());

    // Every self-healing subsystem shows up through the one surface.
    assert!(
        m.drift_detections() > 0,
        "capacity step must fire detectors"
    );
    assert!(m.policy.retrain_triggers >= m.rebuilds());
    assert!(m.rebuilds() > 0, "retrain consumer must hot-swap in-run");
    assert!(m.member_deaths() > 0, "crash + blackout must kill members");
    assert!(
        m.member_recoveries() > 0,
        "restart + blackout end must rejoin"
    );
    assert!(
        m.safe_mode_periods() > 0,
        "3-of-4 blackout must break quorum"
    );
    assert!(m.policy.online_updates > 0);
    assert!(m.policy.tracking_samples > 0);
    assert_eq!(m.policy.members_dead, vec![false; 4], "everyone rejoined");
    assert_eq!(m.policy.safe_mode_active, vec![false], "safe mode cleared");

    // The informational SafeMode directives bracket the quorum loss.
    let safe: Vec<&Directive> = log
        .directives
        .iter()
        .filter(|d| matches!(d.kind, DirectiveKind::SafeMode { .. }))
        .collect();
    assert!(safe.len() >= 2, "entry and exit transitions");
    assert!(safe
        .iter()
        .all(|d| d.level == Level::L1 && d.to_action().is_none()));

    // Directive stamps are consistent with the policy's cadence.
    let cadence = policy.cadence();
    for d in &log.directives {
        assert_eq!(d.epoch, cadence.epoch(d.level, d.tick), "epoch stamp");
        match d.level {
            Level::L1 => assert!(cadence.is_l1_tick(d.tick)),
            Level::L2 => assert!(cadence.is_l2_tick(d.tick)),
            Level::L0 => {}
        }
    }
}
