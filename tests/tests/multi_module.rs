//! Cross-crate integration of the full three-level hierarchy on a
//! multi-module cluster (the §5.2 structure at test scale).

use llc_cluster::{paper_cluster_16, Experiment, HierarchicalPolicy, ScenarioConfig};
use llc_workload::{wc98_like_fig6, Trace, VirtualStore};

fn small_cluster() -> ScenarioConfig {
    // Two modules of four — enough to exercise the L2 path.
    let mut scenario = paper_cluster_16().with_coarse_learning();
    scenario.modules.truncate(2);
    scenario
}

#[test]
fn two_module_cluster_meets_target_under_moderate_load() {
    let scenario = small_cluster();
    let mut policy = HierarchicalPolicy::build(&scenario);
    assert_eq!(policy.num_modules(), 2);
    assert_eq!(policy.num_computers(), 8);
    assert!(policy.l2().is_some(), "multi-module scenario builds an L2");

    // ~180 req/s against ~420 req/s full capacity.
    let trace = Trace::new(30.0, vec![180.0 * 30.0; 80]).unwrap();
    let store = VirtualStore::paper_default(21);
    let log = Experiment::paper_default(21)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();

    assert_eq!(s.total_dropped, 0);
    assert!(
        s.mean_response < 4.0,
        "mean response {:.2} must hold r* = 4 s",
        s.mean_response
    );
    // Both modules receive load.
    let last_gamma = &policy.gamma_module_history().last().unwrap().1;
    assert!(
        last_gamma.iter().all(|&g| g > 0.0),
        "steady state should use both modules: {last_gamma:?}"
    );
}

#[test]
fn l2_splits_always_sum_to_one() {
    let scenario = small_cluster();
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = wc98_like_fig6(3)
        .slice(0, 40)
        .rebucket(30.0)
        .unwrap()
        .scaled(0.4);
    let store = VirtualStore::paper_default(22);
    let _ = Experiment::paper_default(22)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    assert!(!policy.gamma_module_history().is_empty());
    for (tick, gamma) in policy.gamma_module_history() {
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "tick {tick}: γ sums to {total}");
        assert!(gamma.iter().all(|&g| g >= -1e-12));
    }
}

#[test]
fn conservation_arrivals_equal_completions_plus_queue() {
    let scenario = small_cluster();
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = Trace::new(30.0, vec![120.0 * 30.0; 40]).unwrap();
    let store = VirtualStore::paper_default(23);
    let log = Experiment::paper_default(23)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();
    let final_queue: u64 = log.ticks.last().unwrap().queue_total as u64;
    assert_eq!(
        s.total_arrivals,
        s.total_completions + final_queue + s.total_dropped,
        "requests must be conserved"
    );
}
