//! Failure injection: a machine that never finishes booting (infinite
//! dead time) must not sink requests — the boot-aware routing keeps load
//! on the serving machines and the module soldiers on.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_sim::PowerState;
use llc_workload::{Trace, VirtualStore};

#[test]
fn machine_that_never_boots_does_not_sink_requests() {
    let mut scenario = single_module(4).with_coarse_learning();
    // Machine 1 refuses to boot, forever.
    scenario.modules[0][1].boot_delay = f64::INFINITY;
    let mut policy = HierarchicalPolicy::build(&scenario);

    // Moderate steady load that wants ~2-3 machines.
    let trace = Trace::new(30.0, vec![70.0 * 30.0; 60]).unwrap();
    let store = VirtualStore::paper_default(5);
    // Cold start: every switch-on decision goes through the (broken) boot
    // path.
    let experiment = Experiment {
        prewarmed: false,
        ..Experiment::paper_default(5)
    };
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();

    assert_eq!(
        s.total_dropped, 0,
        "no requests may be lost to the dead machine"
    );
    // The cluster still completes the work with the healthy machines
    // (cold-start transient aside).
    assert!(
        s.total_completions as f64 > 0.9 * s.total_arrivals as f64,
        "completed {} of {}",
        s.total_completions,
        s.total_arrivals
    );
    // Steady state reached: late-window responses are near target.
    let late: Vec<f64> = log
        .ticks
        .iter()
        .skip(40)
        .filter_map(|t| t.mean_response)
        .collect();
    let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
    assert!(
        late_mean < 8.0,
        "late mean response {late_mean:.2} should stabilize despite the dead machine"
    );
}

#[test]
fn dead_machine_keeps_zero_queue() {
    let mut scenario = single_module(2).with_coarse_learning();
    scenario.modules[0][1].boot_delay = f64::INFINITY;
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = Trace::new(30.0, vec![30.0 * 30.0; 30]).unwrap();
    let store = VirtualStore::paper_default(6);
    let log = Experiment::paper_default(6)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    // The never-booting machine must never hold queued requests once the
    // boot-aware routing is in force (prewarmed start puts it On, but any
    // power cycling strands it in Booting forever).
    for t in &log.ticks {
        if !t.active_flags[1] {
            assert_eq!(
                t.queues[1], 0,
                "tick {}: dead machine hoards requests",
                t.tick
            );
        }
    }
    assert_eq!(log.summary().total_dropped, 0);
}

#[test]
fn sim_reports_infinite_boot_as_booting_forever() {
    use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};
    let mut sim = ClusterSim::new(ClusterConfig {
        modules: vec![vec![ComputerConfig::new(
            vec![1.0e9],
            PowerModel::paper_default(),
            f64::INFINITY,
        )]],
    });
    sim.power_on(0);
    sim.run_until(1e6).unwrap();
    assert!(matches!(
        sim.computer(0).state(),
        PowerState::Booting { .. }
    ));
}
