//! Failure injection: a machine that never finishes booting (infinite
//! dead time) must not sink requests — the boot-aware routing keeps load
//! on the serving machines and the module soldiers on.

use llc_cluster::{
    single_module, Experiment, FaultToleranceConfig, HierarchicalPolicy, PolicyBuilder,
};
use llc_core::OnlineConfig;
use llc_sim::PowerState;
use llc_workload::{FaultEvent, FaultKind, FaultPlan, Trace, VirtualStore};

#[test]
fn machine_that_never_boots_does_not_sink_requests() {
    let mut scenario = single_module(4).with_coarse_learning();
    // Machine 1 refuses to boot, forever.
    scenario.modules[0][1].boot_delay = f64::INFINITY;
    let mut policy = HierarchicalPolicy::build(&scenario);

    // Moderate steady load that wants ~2-3 machines.
    let trace = Trace::new(30.0, vec![70.0 * 30.0; 60]).unwrap();
    let store = VirtualStore::paper_default(5);
    // Cold start: every switch-on decision goes through the (broken) boot
    // path.
    let experiment = Experiment {
        prewarmed: false,
        ..Experiment::paper_default(5)
    };
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();

    assert_eq!(
        s.total_dropped, 0,
        "no requests may be lost to the dead machine"
    );
    // The cluster still completes the work with the healthy machines
    // (cold-start transient aside).
    assert!(
        s.total_completions as f64 > 0.9 * s.total_arrivals as f64,
        "completed {} of {}",
        s.total_completions,
        s.total_arrivals
    );
    // Steady state reached: late-window responses are near target.
    let late: Vec<f64> = log
        .ticks
        .iter()
        .skip(40)
        .filter_map(|t| t.mean_response)
        .collect();
    let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
    assert!(
        late_mean < 8.0,
        "late mean response {late_mean:.2} should stabilize despite the dead machine"
    );
}

#[test]
fn dead_machine_keeps_zero_queue() {
    let mut scenario = single_module(2).with_coarse_learning();
    scenario.modules[0][1].boot_delay = f64::INFINITY;
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = Trace::new(30.0, vec![30.0 * 30.0; 30]).unwrap();
    let store = VirtualStore::paper_default(6);
    let log = Experiment::paper_default(6)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    // The never-booting machine must never hold queued requests once the
    // boot-aware routing is in force (prewarmed start puts it On, but any
    // power cycling strands it in Booting forever).
    for t in &log.ticks {
        if !t.active_flags[1] {
            assert_eq!(
                t.queues[1], 0,
                "tick {}: dead machine hoards requests",
                t.tick
            );
        }
    }
    assert_eq!(log.summary().total_dropped, 0);
}

/// Regression: a machine restarting into an *overloaded* module must not
/// open an arrival-hoarding window. The overload makes every γ share
/// precious, so the L1 is maximally tempted to hand the returning member
/// load the moment it reappears — but from restart order to boot-done
/// the machine cannot serve, and any requests routed at it would sit
/// behind the boot dead time (or be refused outright). Its queue must
/// read zero for the whole crash→boot-done stretch.
#[test]
fn restart_under_overload_has_no_arrival_hoarding_window() {
    let scenario = single_module(4).with_coarse_learning().with_hash_maps();
    let capacity: f64 = scenario.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let mut policy = PolicyBuilder::new(scenario.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .build();

    // ~95% of full-cluster capacity: the three survivors run overloaded
    // the whole time machine 1 is down.
    let rate = 0.95 * capacity;
    let crash_tick = 20u64;
    let restart_tick = 32u64;
    let boot_ticks = 4u64; // 120 s boot at the 30 s base tick
    let trace = Trace::new(30.0, vec![rate * 30.0; 60]).unwrap();
    let store = VirtualStore::paper_default(7);
    let experiment = Experiment {
        faults: Some(FaultPlan::new(vec![
            FaultEvent {
                tick: crash_tick,
                computer: 1,
                kind: FaultKind::Crash { requeue: false },
            },
            FaultEvent {
                tick: restart_tick,
                computer: 1,
                kind: FaultKind::Restart,
            },
        ])),
        ..Experiment::paper_default(7)
    };
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();

    // From the crash until boot-done the machine can hold no work: the
    // crash ripped its queue out, and nothing may be routed back at it
    // until it actually serves again.
    for t in &log.ticks {
        if t.tick >= crash_tick && t.tick < restart_tick + boot_ticks {
            assert_eq!(
                t.queues[1], 0,
                "tick {}: restarting machine hoards requests mid-overload",
                t.tick
            );
        }
    }
    assert_eq!(policy.member_deaths(), 1, "watchdog saw the crash");
    assert_eq!(policy.member_recoveries(), 1, "member rejoined after boot");
    let s = log.summary();
    // Drops are bounded by the watchdog's detection latency (the blind
    // window where γ still points at the dead machine), not the whole
    // outage: well under the ~25% share over the 12 dead ticks.
    let outage_share = rate * 30.0 * (restart_tick + boot_ticks - crash_tick) as f64 / 4.0;
    assert!(
        (s.total_dropped as f64) < 0.8 * outage_share,
        "dropped {} of an outage share of {outage_share:.0} — watchdog never rerouted",
        s.total_dropped
    );
}

#[test]
fn sim_reports_infinite_boot_as_booting_forever() {
    use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel};
    let mut sim = ClusterSim::new(ClusterConfig {
        modules: vec![vec![ComputerConfig::new(
            vec![1.0e9],
            PowerModel::paper_default(),
            f64::INFINITY,
        )]],
    });
    sim.power_on(0);
    sim.run_until(1e6).unwrap();
    assert!(matches!(
        sim.computer(0).state(),
        PowerState::Booting { .. }
    ));
}
