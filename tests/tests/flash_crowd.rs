//! Flash-crowd stress: the workload triples within six minutes — the
//! "changes quite significantly and quickly" regime that motivates
//! proactive control. The controller must recruit machines, absorb the
//! spike without losing requests, and settle back down afterwards.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{FlashCrowd, Trace, VirtualStore};

#[test]
fn flash_crowd_is_absorbed_without_drops() {
    let scenario = single_module(4).with_coarse_learning();
    let mut policy = HierarchicalPolicy::build(&scenario);

    // Base: steady 40 req/s. Flash: ×3 at bucket 30, 3-bucket rise,
    // decaying over ~10 buckets.
    let base = Trace::new(120.0, vec![40.0 * 120.0; 80]).unwrap();
    let crowd = FlashCrowd {
        start: 30,
        magnitude: 3.0,
        rise: 3,
        decay: 10.0,
    };
    let trace = crowd.apply(&base);
    let store = VirtualStore::paper_default(55);
    let log = Experiment::paper_default(55)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();

    assert_eq!(s.total_dropped, 0, "the spike must not shed requests");
    assert!(
        s.total_completions as f64 > 0.98 * s.total_arrivals as f64,
        "completed {} of {}",
        s.total_completions,
        s.total_arrivals
    );

    // The controller must have recruited during the spike...
    let active = policy.active_history();
    let before = active
        .iter()
        .filter(|(t, _)| (60..120).contains(t)) // pre-spike steady state
        .map(|(_, a)| *a)
        .max()
        .unwrap();
    let during = active
        .iter()
        .filter(|(t, _)| (120..200).contains(t))
        .map(|(_, a)| *a)
        .max()
        .unwrap();
    assert!(
        during > before,
        "spike must recruit machines: before {before}, during {during}"
    );

    // ... and released capacity once the crowd decayed.
    let after = active
        .iter()
        .filter(|(t, _)| *t >= 280)
        .map(|(_, a)| *a)
        .min()
        .unwrap();
    assert!(
        after < during,
        "machines must be released after the spike: after {after}, during {during}"
    );

    // Tail: responses back at target.
    let tail: Vec<f64> = log
        .ticks
        .iter()
        .filter(|t| t.tick >= 280)
        .filter_map(|t| t.mean_response)
        .collect();
    let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    assert!(tail_mean < 4.0, "post-spike mean response {tail_mean:.2}");
}
