//! The in-hierarchy closed loop end to end: the event-driven
//! `HierarchicalPolicy`/`Experiment` stack self-corrects from its own
//! realized outcomes with zero harness code, the L2→L1 feed-forward
//! removes the re-split/boot-dead-time oscillation, and the drift
//! detector switches the learning rate on both map substrates.

use llc_cluster::{
    single_module, ClosedLoopMode, Experiment, FrequencyProfile, GEntry, HierarchicalPolicy,
    L0Config, L0Controller, L1Config, L1Controller, LearnSpec, MapBackend, MemberSpec,
    PolicyBuilder, ScenarioConfig,
};
use llc_core::{LearnRate, OnlineConfig};
use llc_workload::{
    drift_scenarios, CapacityProfile, DiurnalShape, SyntheticBuilder, Trace, VirtualStore,
};

/// The bench's closed-loop scenario: two machines pinned on (so the
/// tracking comparison is not dominated by boot dead-time transients)
/// over hash-backed maps (so out-of-envelope outcomes are absorbed).
fn closed_loop_scenario() -> ScenarioConfig {
    let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
    sc.l1.min_active = 2;
    sc
}

fn run_tracking(sc: &ScenarioConfig, closed: bool) -> (f64, u64, HierarchicalPolicy) {
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenario = &drift_scenarios(0xC105ED, 50, 120.0, 0.55 * capacity)[2]; // capacity step
    let builder = PolicyBuilder::new(sc.clone());
    let mut policy = if closed {
        builder.closed_loop(OnlineConfig::default())
    } else {
        builder.outcome_tracking(OnlineConfig::default())
    }
    .build();
    let exp = Experiment {
        drift: Some(scenario.capacity),
        ..Experiment::paper_default(0xBEEF)
    };
    let store = VirtualStore::paper_default(0xBEEF);
    let log = exp
        .run(sc.to_sim_config(), &mut policy, &scenario.trace, &store)
        .expect("well-formed scenario");
    assert!(log.ticks.len() > 100);
    let mae = policy.tracking_error().expect("outcomes derived");
    let updates = policy.online_updates();
    (mae, updates, policy)
}

#[test]
fn closed_loop_beats_offline_with_zero_harness_code() {
    let sc = closed_loop_scenario();
    let (offline_mae, offline_updates, offline_policy) = run_tracking(&sc, false);
    let (closed_mae, closed_updates, closed_policy) = run_tracking(&sc, true);

    // The offline-only arm derives outcomes but never learns.
    assert_eq!(offline_policy.closed_loop_mode(), ClosedLoopMode::Observe);
    assert_eq!(offline_updates, 0, "Observe mode must not touch the maps");
    // The closed loop learns without a single record_outcome/learn_online
    // call in this test.
    assert_eq!(closed_policy.closed_loop_mode(), ClosedLoopMode::Learn);
    assert!(closed_updates > 20, "only {closed_updates} updates applied");
    assert!(
        closed_mae < offline_mae,
        "closed-loop tracking MAE {closed_mae:.3} must beat offline-only {offline_mae:.3}"
    );
    // The capacity step is a global model break: the detector must both
    // fire and conclude the residuals are not local.
    assert!(closed_policy.l1(0).drift_detections() > 0);
    assert!(closed_policy.retrain_recommended());
}

#[test]
fn observe_mode_queues_outcomes_for_caller_driven_replay() {
    let sc = closed_loop_scenario();
    let (_, _, mut policy) = run_tracking(&sc, false);
    let outcomes = policy.drain_realized_outcomes();
    assert!(outcomes.len() > 50, "got {} outcomes", outcomes.len());
    for o in &outcomes {
        assert_eq!(o.module, 0);
        assert!(o.member < 2);
        assert!(o.lambda.is_finite() && o.lambda >= 0.0);
        assert!(o.entry.cost.is_finite() && o.entry.cost >= 0.0);
        assert!(o.entry.power >= 0.0);
    }
    assert!(
        policy.drain_realized_outcomes().is_empty(),
        "drain must consume the queue"
    );
    // Replaying the drained outcomes through the public caller-driven
    // surface adapts the policy's own maps.
    policy.l1_mut(0).enable_online(OnlineConfig::default());
    for o in &outcomes {
        policy
            .l1_mut(o.module)
            .record_outcome(o.member, o.lambda, o.q0, o.entry);
    }
    let applied = policy.l1_mut(0).learn_online();
    assert!(applied > 20, "only {applied} of {} applied", outcomes.len());
}

/// A two-module cluster at marginal capacity under a square-wave load:
/// every step forces a re-split, and every re-split lands a boot dead
/// time later than the L1s can follow — the lag the re-split
/// oscillation feeds on. With the feed-forward the L1s provision for
/// the new share at the re-split tick itself, so the γ decisions must
/// wander strictly less than under the hysteresis-only baseline.
#[test]
fn feed_forward_damps_l2_resplit_oscillation() {
    fn gamma_variance(feed_forward: bool) -> (f64, usize, f64) {
        let mut sc = llc_cluster::paper_cluster_16().with_coarse_learning();
        sc.modules.truncate(2);
        sc.l2.feed_forward = feed_forward;
        let capacity: f64 = sc
            .member_specs()
            .iter()
            .flatten()
            .map(|m| m.speed / m.c_prior)
            .sum();
        // Square wave between 35% and 75% of cluster capacity, 8 minutes
        // per phase: marginal at the crests once boot dead times are
        // counted, quiet enough in the troughs that machines shed.
        let counts: Vec<f64> = (0..64)
            .map(|k| {
                let r = if (k / 16) % 2 == 0 { 0.35 } else { 0.75 };
                r * capacity * 30.0
            })
            .collect();
        let trace = Trace::new(30.0, counts).expect("well-formed trace");
        let store = VirtualStore::paper_default(11);
        let mut policy = HierarchicalPolicy::build(&sc);
        let exp = Experiment::paper_default(23);
        let log = exp
            .run(sc.to_sim_config(), &mut policy, &trace, &store)
            .expect("well-formed scenario");
        let gammas: Vec<f64> = policy
            .gamma_module_history()
            .iter()
            .map(|(_, g)| g[0])
            .collect();
        assert!(gammas.len() > 8, "need L2 decisions, got {}", gammas.len());
        let mean = gammas.iter().sum::<f64>() / gammas.len() as f64;
        let var = gammas.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gammas.len() as f64;
        let moves = gammas
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() > 1e-9)
            .count();
        (var, moves, log.summary().mean_response)
    }

    let (var_base, moves_base, resp_base) = gamma_variance(false);
    let (var_ff, moves_ff, resp_ff) = gamma_variance(true);
    assert!(
        var_ff < var_base,
        "feed-forward must damp the split oscillation: \
         var {var_ff:.5} (ff) vs {var_base:.5} (hysteresis only), \
         moves {moves_ff} vs {moves_base}, \
         mean response {resp_ff:.2} vs {resp_base:.2}"
    );
}

/// In a multi-module cluster the closed loop also feeds the L2 residual
/// layer: realized per-module costs are recorded and absorbed with no
/// harness code.
#[test]
fn closed_loop_feeds_l2_residual_layer() {
    let mut sc = llc_cluster::paper_cluster_16().with_coarse_learning();
    sc.modules.truncate(2);
    let capacity: f64 = sc
        .member_specs()
        .iter()
        .flatten()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let trace = Trace::new(30.0, vec![0.5 * capacity * 30.0; 48]).expect("well-formed trace");
    let store = VirtualStore::paper_default(31);
    let mut policy = PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .build();
    let exp = Experiment {
        drift: Some(CapacityProfile::Ramp { from: 1.0, to: 0.7 }),
        ..Experiment::paper_default(31)
    };
    exp.run(sc.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");
    let l2 = policy.l2().expect("two modules build an L2");
    assert!(l2.online_enabled());
    assert!(
        l2.online_updates() > 0,
        "the L2 leg must absorb realized module outcomes"
    );
    assert!(policy.online_updates() > l2.online_updates());
    assert!(policy.tracking_samples() > 0);
}

/// The drift detector switches the online learner between the steady and
/// fast rates on both substrates, and the fast rate re-converges faster
/// than the steady-only learner over the same outcome stream.
#[test]
fn detector_switches_rate_on_both_substrates() {
    let spec = MemberSpec::paper_default(FrequencyProfile::TallEight);
    let l0 = L0Config::paper_default();
    for backend in [MapBackend::Dense, MapBackend::Hash] {
        let map =
            llc_cluster::AbstractionMap::learn_for_member(&l0, &spec, LearnSpec::coarse(), backend);
        let mut l1 = L1Controller::new(L1Config::paper_default(), vec![spec.clone()], vec![map]);
        l1.enable_online(OnlineConfig::default());
        assert_eq!(l1.member_learn_rate(0), LearnRate::Steady);

        let c = spec.c_prior;
        let lambda = 0.5 / c;
        let mut q = 0.0f64;
        // Nominal phase: outcomes match the map, detector stays steady.
        for _ in 0..12 {
            let (cost, power, final_q) =
                L0Controller::simulate_model(&l0, &spec.phis, q, lambda, c, 4);
            l1.record_outcome(
                0,
                lambda,
                q,
                GEntry {
                    cost,
                    power,
                    final_q,
                },
            );
            l1.learn_online();
            q = final_q;
        }
        assert_eq!(
            l1.drift_detections(),
            0,
            "{backend:?}: matching outcomes must not fire"
        );
        assert_eq!(l1.member_learn_rate(0), LearnRate::Steady);

        // The machine fails to half capacity: the standing load no
        // longer fits, residuals jump, the detector fires and the
        // learner goes fast.
        for _ in 0..12 {
            let (cost, power, final_q) =
                L0Controller::simulate_model(&l0, &spec.phis, q, lambda, c / 0.5, 4);
            l1.record_outcome(
                0,
                lambda,
                q,
                GEntry {
                    cost,
                    power,
                    final_q,
                },
            );
            l1.learn_online();
            q = final_q;
        }
        assert!(
            l1.drift_detections() > 0,
            "{backend:?}: the capacity step must fire the detector"
        );
        assert!(
            l1.fast_updates() > 0,
            "{backend:?}: post-detection updates must run at the fast rate"
        );
    }
}

/// `CapacityProfile`-driven drift inside `Experiment::run` reaches the
/// plant: the same workload completes less quickly on a degraded plant.
#[test]
fn experiment_drift_hook_degrades_the_plant() {
    let sc = single_module(2).with_coarse_learning();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let trace =
        SyntheticBuilder::new(DiurnalShape::new(0.5 * capacity * 30.0), 40, 30.0).build(0x77);
    let store = VirtualStore::paper_default(7);
    let mut summaries = Vec::new();
    for drift in [None, Some(CapacityProfile::Ramp { from: 1.0, to: 0.5 })] {
        let mut policy = HierarchicalPolicy::build(&sc);
        let exp = Experiment {
            drift,
            ..Experiment::paper_default(3)
        };
        let log = exp
            .run(sc.to_sim_config(), &mut policy, &trace, &store)
            .unwrap();
        summaries.push(log.summary());
    }
    assert!(
        summaries[1].mean_response > summaries[0].mean_response,
        "capacity loss must show in responses: {:.3} vs {:.3}",
        summaries[1].mean_response,
        summaries[0].mean_response
    );
}
