//! Self-healing end to end: the drift-aware L0 keeps the frequency
//! controllers out of the deep-degradation limit cycle, and the
//! `RetrainManager` consumes the latched `retrain_recommended()` signal
//! with an in-run background rebuild and hot-swap.

use llc_cluster::{
    single_module, Experiment, ExperimentLog, HierarchicalPolicy, PolicyBuilder, RetrainConfig,
    ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_workload::{deep_degradation_scenario, VirtualStore};

fn base_scenario() -> ScenarioConfig {
    let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
    sc.l1.min_active = 2;
    sc
}

fn run(self_healing: bool) -> (HierarchicalPolicy, ExperimentLog) {
    let sc = base_scenario();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let scenario = deep_degradation_scenario(0xC105ED, 90, 120.0, capacity);
    let mut builder = PolicyBuilder::new(sc.clone()).closed_loop(OnlineConfig::default());
    if self_healing {
        builder = builder.drift_aware_l0().retrain(RetrainConfig::default());
    }
    let mut policy = builder.build();
    let exp = Experiment {
        drift: Some(scenario.capacity),
        ..Experiment::paper_default(0xBEEF)
    };
    let store = VirtualStore::paper_default(5);
    let log = exp
        .run(sc.to_sim_config(), &mut policy, &scenario.trace, &store)
        .expect("well-formed scenario");
    (policy, log)
}

/// The acceptance criterion of the drift-aware refactor: on the
/// deep-degradation scenario the ŝ-corrected L0 plus the retrain
/// hot-swap strictly improve tracking MAE over the PR 3 closed loop,
/// and the frequency decisions stop limit-cycling (strictly fewer
/// switches, not just "no regression").
#[test]
fn self_healing_beats_the_drift_blind_closed_loop_on_deep_degradation() {
    let (blind_policy, blind_log) = run(false);
    let (heal_policy, heal_log) = run(true);

    let blind_mae = blind_policy.tracking_error().expect("outcomes derived");
    let heal_mae = heal_policy.tracking_error().expect("outcomes derived");
    assert!(
        heal_mae < blind_mae,
        "self-healing MAE {heal_mae:.3} must beat drift-blind {blind_mae:.3}"
    );

    let blind_switches = blind_log.frequency_switches();
    let heal_switches = heal_log.frequency_switches();
    assert!(
        heal_switches < blind_switches,
        "drift-aware L0 must stop the limit cycle: {heal_switches} vs {blind_switches} switches"
    );

    // The scale estimators converged onto the injected 0.5 step.
    for i in 0..heal_policy.num_computers() {
        let s = heal_policy.l0(i).scale_estimate();
        assert!(
            (0.35..=0.7).contains(&s),
            "computer {i}: ŝ = {s} should track the 0.5-capacity plant"
        );
    }
    // The drift-blind arm's estimators are disabled and stay nominal.
    for i in 0..blind_policy.num_computers() {
        assert_eq!(blind_policy.l0(i).scale_estimate(), 1.0);
    }
}

/// The retrain lifecycle in-run: detect → latch → background rebuild →
/// hot-swap one L1 period later → detectors reset, with the cooldown
/// spacing consecutive rebuilds.
#[test]
fn retrain_manager_rebuilds_and_hot_swaps_in_run() {
    let (policy, log) = run(true);
    let history = policy.retrain_history();
    assert!(
        !history.is_empty(),
        "the capacity step must trigger at least one rebuild"
    );
    assert_eq!(policy.retrain_rebuilds(), history.len());
    assert!(history.len() <= RetrainConfig::default().max_rebuilds);

    let l1_every = 4; // T_L1 / T_L0 in the paper scenario
    for r in history {
        // The swap lands exactly one L1 period after the trigger: the
        // rebuild runs in the background between the two ticks, so no
        // decision waits on it longer than that.
        assert_eq!(
            r.swap_tick - r.trigger_tick,
            l1_every,
            "hot-swap must land one L1 period after the trigger: {r:?}"
        );
        assert_eq!(r.modules, vec![0]);
    }
    // Cooldown: consecutive triggers at least 8 L1 periods apart.
    for pair in history.windows(2) {
        assert!(
            pair[1].trigger_tick - pair[0].trigger_tick
                >= RetrainConfig::default().cooldown_periods * l1_every,
            "cooldown must space rebuilds: {pair:?}"
        );
    }
    // Hot-swapping must not stall the control loop: every decision in
    // the run — including the swap ticks, which join the background
    // thread — stays far under one L0 period of wall clock.
    let max_decision = log
        .ticks
        .iter()
        .map(|t| t.decision_time)
        .max()
        .expect("non-empty run");
    assert!(
        max_decision.as_secs_f64() < 5.0,
        "a decision took {max_decision:?} — the rebuild must not block the loop"
    );
    // The swap released the latch and re-armed the detectors; whether it
    // re-latched later depends on the remaining drift, but the *budget*
    // bounds the rebuilds either way.
    assert!(policy.tracking_samples() > 100);
}

/// `acknowledge_retrain` is the manual consume path for callers driving
/// their own rebuild: the latch clears and the detectors keep observing.
#[test]
fn acknowledge_clears_the_policy_level_latch() {
    let (mut policy, _) = run(false);
    assert!(
        policy.retrain_recommended(),
        "deep degradation must latch the drift-blind policy"
    );
    policy.acknowledge_retrain();
    assert!(!policy.retrain_recommended(), "acknowledge consumes");
    assert_eq!(policy.retrain_rebuilds(), 0, "no manager, no rebuilds");
}
