//! Golden equivalence: the pruned branch-and-bound decision core is a
//! pure optimization, never a decision change.
//!
//! The closed-loop hierarchy is run twice over the exact scenario
//! configurations of the two committed bench families —
//! `bench_closed_loop`'s drift scenarios and `bench_faults`'s fault
//! schedules — once with the shipping pruned search and once with
//! `pruned_search = false` (every candidate γ-searched). The two runs
//! must emit *identical* action sequences, tick for tick: every power
//! order, every frequency index, every γ split, over the whole
//! trajectory. Because each decision feeds the next period's plant
//! state, a single pruned-away optimum anywhere in the run would
//! diverge the remaining trajectory and fail the comparison.
//!
//! A property test backs the golden runs: the bound the search prunes
//! on (switch-on penalty + backlog drain) is *admissible* — it never
//! exceeds the candidate's true total cost — because the γ-search term
//! it omits is a band average of map costs, and map costs are
//! non-negative by construction (absolute-value penalties over slack
//! and power). The test checks the non-negativity lemma directly on
//! randomized map probes and the end-to-end consequence (bit-identical
//! decisions) on randomized module states.

use llc_cluster::{
    cluster_of, single_module, AbstractionMap, Action, Cadence, ClusterPolicy, Experiment,
    FaultToleranceConfig, HierarchicalPolicy, L0Config, L1Config, L1Controller, LearnSpec,
    MapBackend, MemberSpec, Observations, PolicyBuilder, PolicyMetrics, ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_workload::{drift_scenarios, fault_scenarios, CapacityProfile, VirtualStore};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Records every tick's full action vector so two runs can be compared
/// directive for directive.
struct Recorder {
    inner: HierarchicalPolicy,
    log: Vec<Vec<Action>>,
}

impl ClusterPolicy for Recorder {
    fn decide(&mut self, obs: &Observations) -> Vec<Action> {
        let actions = self.inner.decide(obs);
        self.log.push(actions.clone());
        actions
    }

    fn name(&self) -> &str {
        "hierarchical-llc-recorder"
    }

    fn cadence(&self) -> Cadence {
        self.inner.cadence()
    }

    fn metrics(&self) -> PolicyMetrics {
        self.inner.metrics()
    }
}

/// `bench_closed_loop`'s diurnal-profile re-bucketing (the capacity
/// profiles are expressed over 120 s buckets, the experiment ticks every
/// 30 s).
fn profile_in_ticks(profile: CapacityProfile, ratio: f64) -> CapacityProfile {
    match profile {
        CapacityProfile::Diurnal {
            base,
            amplitude,
            period,
        } => CapacityProfile::Diurnal {
            base,
            amplitude,
            period: period * ratio,
        },
        other => other,
    }
}

/// Assert two directive logs agree on every tick. `f64`-carrying actions
/// (`SetModuleWeights`, `SetComputerWeights`) compare by value, which for
/// the quantized γ grid means exact-grid-point equality.
fn assert_directives_equal(pruned: &[Vec<Action>], exhaustive: &[Vec<Action>], label: &str) {
    assert_eq!(
        pruned.len(),
        exhaustive.len(),
        "{label}: tick counts diverged"
    );
    for (tick, (p, e)) in pruned.iter().zip(exhaustive).enumerate() {
        assert_eq!(
            p, e,
            "{label}: directives diverged at tick {tick} — pruning changed a decision"
        );
    }
}

/// The closed-loop bench family (`bench_closed_loop --quick`): hash-map
/// single_module(2) with both machines pinned on, over the three seeded
/// drift scenarios.
#[test]
fn pruned_search_matches_exhaustive_on_closed_loop_scenarios() {
    let buckets = 60; // the bench's --quick horizon
    let base_sc = {
        let mut sc = single_module(2).with_coarse_learning().with_hash_maps();
        sc.l1.min_active = 2;
        sc
    };
    let capacity: f64 = base_sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    for scenario in &drift_scenarios(0xC105ED, buckets, 120.0, 0.55 * capacity) {
        let mut logs = Vec::new();
        for pruned in [true, false] {
            let mut sc = base_sc.clone();
            sc.l1.pruned_search = pruned;
            let policy = PolicyBuilder::new(sc.clone())
                .closed_loop(OnlineConfig::default().validated())
                .build();
            let ratio = scenario.trace.interval() / 30.0;
            let exp = Experiment {
                drift: Some(profile_in_ticks(scenario.capacity, ratio)),
                ..Experiment::paper_default(0xBEEF)
            };
            let store = VirtualStore::paper_default(0xBEEF);
            let mut recorder = Recorder {
                inner: policy,
                log: Vec::new(),
            };
            exp.run(sc.to_sim_config(), &mut recorder, &scenario.trace, &store)
                .expect("well-formed scenario");
            logs.push(recorder.log);
        }
        assert_directives_equal(&logs[0], &logs[1], scenario.name);
    }
}

/// The fault bench family (`bench_faults`): hash-map single_module(4)
/// under the four seeded fault schedules, with the watchdog stack on —
/// so the comparison also covers `decide_excluding` with dead members,
/// the safe-mode fallback and post-rejoin recruiting.
#[test]
fn pruned_search_matches_exhaustive_on_fault_scenarios() {
    let buckets = 90; // the bench horizon (quick keeps it too)
    let base_sc = single_module(4).with_coarse_learning().with_hash_maps();
    let capacity: f64 = base_sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    for fs in &fault_scenarios(0xFA11, buckets, 120.0, capacity, 4) {
        let mut logs = Vec::new();
        for pruned in [true, false] {
            let mut sc = base_sc.clone();
            sc.l1.pruned_search = pruned;
            let policy = PolicyBuilder::new(sc.clone())
                .closed_loop(OnlineConfig::default().validated())
                .fault_tolerance(FaultToleranceConfig::default())
                .build();
            let exp = Experiment {
                faults: Some(fs.plan.clone()),
                ..Experiment::paper_default(0xBEEF)
            };
            let store = VirtualStore::paper_default(5);
            let mut recorder = Recorder {
                inner: policy,
                log: Vec::new(),
            };
            exp.run(sc.to_sim_config(), &mut recorder, &fs.trace, &store)
                .expect("well-formed scenario");
            logs.push(recorder.log);
        }
        assert_directives_equal(&logs[0], &logs[1], fs.name);
    }
}

/// Trained maps for the property tests, learned once (coarse grid) and
/// shared across cases.
fn learned_module() -> &'static (Vec<MemberSpec>, Vec<Arc<AbstractionMap>>) {
    static FIXTURE: OnceLock<(Vec<MemberSpec>, Vec<Arc<AbstractionMap>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = ScenarioConfig {
            modules: cluster_of(1),
            ..llc_cluster::paper_cluster_16()
        };
        let members: Vec<MemberSpec> = scenario.member_specs().remove(0);
        let maps: Vec<Arc<AbstractionMap>> = members
            .iter()
            .map(|s| {
                Arc::new(AbstractionMap::learn_for_member(
                    &L0Config::paper_default(),
                    s,
                    LearnSpec::coarse(),
                    MapBackend::Dense,
                ))
            })
            .collect();
        (members, maps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lemma the bound's admissibility rests on: every abstraction-map
    /// cost is non-negative (penalties are absolute values), so the
    /// γ-search term the bound omits can only add to switch + drain.
    #[test]
    fn map_costs_are_non_negative(
        member in 0usize..4,
        lambda in 0.0..400.0f64,
        c in 0.001..0.2f64,
        q0 in 0.0..60.0f64,
    ) {
        let (_, maps) = learned_module();
        let e = maps[member].query(lambda, c, q0);
        prop_assert!(
            e.cost >= 0.0,
            "map cost {} < 0 at (λ={lambda}, c={c}, q₀={q0}) — the pruning bound is inadmissible",
            e.cost
        );
    }

    /// End-to-end admissibility: if the bound ever exceeded a candidate's
    /// true cost, the pruned search could skip the exhaustive winner and
    /// the two decisions would differ somewhere in this state space.
    #[test]
    fn pruned_decision_matches_exhaustive_on_random_states(
        queues in proptest::collection::vec(0usize..40, 4),
        active_bits in 0u32..16,
        arrivals in 100u64..20_000,
        warmups in 1usize..5,
    ) {
        let active: Vec<bool> = (0..4).map(|j| active_bits & (1 << j) != 0).collect();
        let (members, maps) = learned_module();
        let pruned_cfg = L1Config::paper_default();
        let exhaustive_cfg = L1Config { pruned_search: false, ..pruned_cfg };
        let mut pruned = L1Controller::new_shared(pruned_cfg, members.clone(), maps.clone());
        let mut exhaustive =
            L1Controller::new_shared(exhaustive_cfg, members.clone(), maps.clone());
        let demands = vec![Some(0.0175); members.len()];
        for _ in 0..warmups {
            pruned.observe(arrivals, &demands);
            exhaustive.observe(arrivals, &demands);
        }
        let dp = pruned.decide(&queues, &active);
        let de = exhaustive.decide(&queues, &active);
        prop_assert_eq!(&dp.alpha, &de.alpha, "pruning changed the on/off vector");
        prop_assert_eq!(
            dp.gamma.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            de.gamma.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            "pruning changed the γ split"
        );
        prop_assert_eq!(
            dp.expected_cost.to_bits(),
            de.expected_cost.to_bits(),
            "pruning changed the expected cost"
        );
    }
}
