//! Substrate equivalence: the dense grid and the legacy hash table must
//! be indistinguishable through every query — identical entries at every
//! trained point, and identical clamped answers for fuzzed off-grid
//! queries — both at the raw `llc-approx` level and through the
//! `AbstractionMap` (whose out-of-grid hybrid replays the analytic model
//! on both substrates).

use llc_approx::{train_dense, train_table, GridSampler};
use llc_cluster::{AbstractionMap, L0Config, LearnSpec, MapBackend};
use rand::{Rng, SeedableRng};

fn fuzz_queries(rng: &mut rand::rngs::StdRng, dims: &[(f64, f64)], n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            dims.iter()
                .map(|&(lo, hi)| {
                    let w = hi - lo;
                    // Span well past both edges so clamping is exercised.
                    rng.gen_range(lo - 0.8 * w..hi + 0.8 * w)
                })
                .collect()
        })
        .collect()
}

#[test]
fn raw_tables_agree_on_trained_points_and_fuzzed_queries() {
    // Deliberately awkward bounds: non-zero offsets and step counts whose
    // floating-point spacing rounds unevenly, so cell collisions and
    // holes (the failure mode the slot tables exist for) actually occur.
    let samplers = [
        GridSampler::new(vec![(0.0, 104.76, 24), (0.0105, 0.028, 5), (0.0, 150.0, 6)]),
        GridSampler::new(vec![(0.3, 7.7, 13), (1.0, 1.0001, 1)]),
        GridSampler::new(vec![(-5.0, 5.0, 21)]),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE051);
    for (si, sampler) in samplers.iter().enumerate() {
        let f = |p: &[f64]| {
            p.iter()
                .enumerate()
                .map(|(i, &v)| v * (i as f64 + 1.5))
                .sum::<f64>()
        };
        let hash = train_table(sampler, &sampler.cell_steps(), f);
        let dense = train_dense(sampler, f);
        assert_eq!(hash.len(), dense.len(), "sampler {si}: trained cell count");

        // Every trained point answers identically (and exactly).
        for p in sampler.points() {
            let h = hash.get_exact(&p).expect("trained point present");
            let d = dense.get_clamped(&p);
            assert_eq!(
                h.to_bits(),
                d.to_bits(),
                "sampler {si}: trained point {p:?}"
            );
        }

        // Fuzzed queries — inside, outside and straddling the grid —
        // answer identically through the robust paths.
        let dims: Vec<(f64, f64)> = (0..sampler.num_dims())
            .map(|d| {
                let (lo, hi, _) = sampler.dim(d);
                (lo, hi)
            })
            .collect();
        for q in fuzz_queries(&mut rng, &dims, 4000) {
            let h = hash.get(&q).expect("non-empty table");
            let d = dense.get_clamped(&q);
            assert_eq!(h.to_bits(), d.to_bits(), "sampler {si}: query {q:?}");
        }
    }
}

#[test]
fn abstraction_map_backends_agree_everywhere() {
    let l0 = L0Config::paper_default();
    let phis = vec![0.25, 0.5, 0.75, 1.0];
    let c_range = (0.0105, 0.028);
    let (lambda_max, q_max) = (110.0, 150.0);
    let build = |backend| {
        AbstractionMap::learn_with_backend(
            &l0,
            &phis,
            c_range,
            lambda_max,
            q_max,
            LearnSpec::coarse(),
            backend,
        )
    };
    let dense = build(MapBackend::Dense);
    let hash = build(MapBackend::Hash);
    assert_eq!(dense.len(), hash.len());

    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..3000 {
        // λ and q intentionally overflow the grid ~30 % of the time: the
        // hybrid must replay the analytic model identically either way.
        let lambda = rng.gen_range(0.0..lambda_max * 1.4);
        let c = rng.gen_range(c_range.0 * 0.3..c_range.1 * 1.8);
        let q = rng.gen_range(0.0..q_max * 1.4);
        let d = dense.query(lambda, c, q);
        let h = hash.query(lambda, c, q);
        assert_eq!(
            (d.cost.to_bits(), d.power.to_bits(), d.final_q.to_bits()),
            (h.cost.to_bits(), h.power.to_bits(), h.final_q.to_bits()),
            "query λ={lambda} c={c} q={q}"
        );
    }

    // Repeated out-of-grid queries stay identical once the dense
    // substrate's replay cache is warm.
    let d1 = dense.query(lambda_max * 1.2, 0.0175, q_max * 1.3);
    let d2 = dense.query(lambda_max * 1.2, 0.0175, q_max * 1.3);
    assert_eq!(d1.cost.to_bits(), d2.cost.to_bits());
}
