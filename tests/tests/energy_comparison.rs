//! The headline claim, as a test: on the same workload the hierarchical
//! LLC controller consumes substantially less energy than an
//! always-on/max-frequency cluster while keeping the mean response near
//! the target, and no requests are lost.

use llc_cluster::{
    single_module, AlwaysMaxPolicy, ClusterPolicy, Experiment, ExperimentSummary,
    HierarchicalPolicy, ThresholdConfig, ThresholdPolicy,
};
use llc_workload::{synthetic_paper_workload, Trace, VirtualStore};

fn run(policy: &mut dyn ClusterPolicy, trace: &Trace, seed: u64) -> ExperimentSummary {
    let scenario = single_module(4).with_coarse_learning();
    let store = VirtualStore::paper_default(seed);
    Experiment::paper_default(seed)
        .run(scenario.to_sim_config(), policy, trace, &store)
        .unwrap()
        .summary()
}

#[test]
fn llc_beats_always_max_on_energy_while_holding_qos() {
    let seed = 77;
    let scenario = single_module(4).with_coarse_learning();
    // A light-to-moderate stretch of the diurnal day where machines can
    // actually be switched off.
    let trace = synthetic_paper_workload(seed).slice(0, 120);

    let mut llc = HierarchicalPolicy::build(&scenario);
    let llc_summary = run(&mut llc, &trace, seed);

    let layout_sizes: Vec<Vec<(f64, usize)>> = scenario
        .member_specs()
        .iter()
        .map(|module| module.iter().map(|m| (m.speed, m.phis.len())).collect())
        .collect();
    let mut always = AlwaysMaxPolicy::new(layout_sizes);
    let always_summary = run(&mut always, &trace, seed);

    assert_eq!(llc_summary.total_dropped, 0, "LLC must not drop requests");
    assert!(
        llc_summary.mean_response < 4.0,
        "LLC mean response {:.2} must hold r* = 4 s",
        llc_summary.mean_response
    );
    assert!(
        llc_summary.total_energy < 0.75 * always_summary.total_energy,
        "LLC energy {:.0} should be well below always-max {:.0}",
        llc_summary.total_energy,
        always_summary.total_energy
    );
}

#[test]
fn llc_energy_does_not_exceed_threshold_heuristic() {
    let seed = 78;
    let scenario = single_module(4).with_coarse_learning();
    let trace = synthetic_paper_workload(seed).slice(0, 120);

    let mut llc = HierarchicalPolicy::build(&scenario);
    let llc_summary = run(&mut llc, &trace, seed);

    let layout: Vec<Vec<(f64, Vec<f64>)>> = scenario
        .member_specs()
        .iter()
        .map(|module| module.iter().map(|m| (m.speed, m.phis.clone())).collect())
        .collect();
    let mut threshold = ThresholdPolicy::new(ThresholdConfig::default(), layout);
    let threshold_summary = run(&mut threshold, &trace, seed);

    // The proactive controller should do at least as well as the reactive
    // heuristic on energy (modest slack for run-to-run texture).
    assert!(
        llc_summary.total_energy <= threshold_summary.total_energy * 1.1,
        "LLC energy {:.0} should not exceed threshold heuristic {:.0} by >10%",
        llc_summary.total_energy,
        threshold_summary.total_energy
    );
}
