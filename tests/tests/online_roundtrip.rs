//! Property tests for the online update path: `update` then `probe`
//! round-trips within the blend tolerance on both substrates, and
//! repeated updates converge geometrically onto the observed target.

use llc_approx::{train_dense, train_table, BlendConfig, CostMap, GridSampler};
use proptest::prelude::*;

/// Both substrates trained over the same 2D grid and seed function.
fn substrates(
    lo: f64,
    width: f64,
    steps: usize,
) -> (
    GridSampler,
    llc_approx::DenseGrid<f64>,
    llc_approx::LookupTable<f64>,
) {
    let sampler = GridSampler::new(vec![(lo, lo + width, steps), (0.0, 4.0, 3)]);
    let f = |p: &[f64]| 3.0 * p[0] - p[1];
    let dense = train_dense(&sampler, f);
    let hash = train_table(&sampler, &sampler.cell_steps(), f);
    (sampler, dense, hash)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One update moves the probed value to exactly
    /// `old + w · (target − old)`, where `w` is the weight the update
    /// reports — on both substrates, for any in-grid point.
    #[test]
    fn update_then_probe_roundtrips_within_blend_tolerance(
        lo in -50.0..50.0f64,
        width in 1.0..40.0f64,
        steps in 2..12usize,
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
        target in -1000.0..1000.0f64,
        rate in 0.05..1.0f64,
        prior in 0.0..8.0f64,
    ) {
        let (sampler, mut dense, mut hash) = substrates(lo, width, steps);
        // An exact grid point: inside both substrates' trained region.
        let (d0_lo, d0_hi, d0_steps) = sampler.dim(0);
        let i = (fx * (d0_steps - 1) as f64).round();
        let x = d0_lo + (d0_hi - d0_lo) * i / (d0_steps - 1) as f64;
        let y = (fy * 2.0).round() * 2.0;
        let point = [x, y];
        let cfg = BlendConfig::new(rate, prior);

        for map in [
            &mut dense as &mut dyn CostMap<f64>,
            &mut hash as &mut dyn CostMap<f64>,
        ] {
            let before = *map.probe(&point).expect("trained map answers");
            let w = map.update(&point, &target, &cfg);
            prop_assert!(w > 0.0, "in-grid update must apply");
            prop_assert!((w - cfg.weight(0.0)).abs() < 1e-12, "fresh-cell weight");
            let after = *map.probe(&point).expect("trained map answers");
            let expect = before + w * (target - before);
            prop_assert!(
                (after - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "blend tolerance: after {after}, expect {expect} (w {w})"
            );
            prop_assert!((map.confidence(&point) - 1.0).abs() < 1e-12);
        }
    }

    /// `k` repeated updates with a constant target shrink the gap by at
    /// least `(1 − w_min)^k`: the geometric convergence both controllers
    /// rely on to track drift.
    #[test]
    fn repeated_updates_converge_geometrically(
        lo in -10.0..10.0f64,
        target in -500.0..500.0f64,
        rate in 0.1..0.9f64,
        reps in 5..30usize,
    ) {
        let (_, mut dense, mut hash) = substrates(lo, 8.0, 5);
        let point = [lo + 4.0, 2.0];
        let cfg = BlendConfig::new(rate, 2.0);
        for map in [
            &mut dense as &mut dyn CostMap<f64>,
            &mut hash as &mut dyn CostMap<f64>,
        ] {
            let before = *map.probe(&point).expect("trained");
            for _ in 0..reps {
                map.update(&point, &target, &cfg);
            }
            let after = *map.probe(&point).expect("trained");
            // Every step blends at least `rate`, so the remaining gap is
            // at most (1 − rate)^reps of the original (plus float slack).
            let bound = (1.0 - rate).powi(reps as i32) * (before - target).abs() + 1e-9;
            prop_assert!(
                (after - target).abs() <= bound * (1.0 + 1e-9),
                "gap {} exceeds geometric bound {bound}",
                (after - target).abs()
            );
        }
    }

    /// Substrate divergence on never-trained keys is by design: the dense
    /// grid refuses (weight 0, nothing changes), the hash table inserts
    /// at full weight and then answers with the measured value.
    #[test]
    fn out_of_region_policies_hold(
        lo in -10.0..10.0f64,
        offset in 5.0..50.0f64,
        target in -100.0..100.0f64,
    ) {
        let (sampler, mut dense, mut hash) = substrates(lo, 4.0, 4);
        let (_, d0_hi, _) = sampler.dim(0);
        let outside = [d0_hi + offset, 2.0];
        let cfg = BlendConfig::default();

        let edge_before = *dense.probe(&outside).expect("clamped answer");
        prop_assert_eq!(dense.update(&outside, &target, &cfg), 0.0);
        prop_assert_eq!(*dense.probe(&outside).expect("clamped answer"), edge_before);

        prop_assert_eq!(hash.update(&outside, &target, &cfg), 1.0);
        prop_assert_eq!(*hash.probe(&outside).expect("inserted cell"), target);
    }
}
