//! Golden equivalence of the networked loop: the hierarchy driven over
//! a real loopback TCP socket in lockstep mode must produce
//! *bit-identical* directive sequences and tracking MAEs to the
//! in-process `Experiment::run` loop, on both golden bench families.
//!
//! This is the payoff of two deliberate choices in `llc-net`: floats
//! travel as IEEE-754 bit patterns (the codec is bit-transparent), and
//! the lockstep session replays the exact observe → ingest → step →
//! actuate → advance ordering of the in-process loop.

use llc_cluster::{Directive, Experiment, HierarchicalPolicy};
use llc_net::scenario::{Family, RunSpec};
use llc_net::{run_agent, serve_controller, AgentCore, ControldCore, FrameTransport, TcpLink};
use llc_workload::Trace;
use std::net::TcpListener;

/// Run the distributed loop — controller serving on an OS-assigned
/// loopback port, agent connecting from a second thread — in lockstep,
/// and return (controller directives log, agent applied directives,
/// final policy, agent wedged events, controller metrics).
fn run_distributed(
    spec: &RunSpec,
    exp: &Experiment,
    trace: &Trace,
) -> (
    Vec<Directive>,
    Vec<Directive>,
    HierarchicalPolicy,
    u64,
    llc_cluster::MetricsSnapshot,
) {
    let ticks_trace = trace.rebucket(exp.t_l0).expect("well-formed trace");
    let total_ticks = ticks_trace.len() as u64;

    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound");

    let agent_spec = *spec;
    let agent_exp = exp.clone();
    let agent_trace = trace.clone();
    let agent = std::thread::spawn(move || {
        let store = agent_spec.store();
        let mut core = AgentCore::new(
            agent_spec.scenario_config().to_sim_config(),
            &agent_exp,
            &agent_trace,
            &store,
        )
        .expect("well-formed plant");
        let stream = std::net::TcpStream::connect(addr).expect("controller is listening");
        let mut link = TcpLink::new(stream).expect("link");
        run_agent(&mut core, &mut link, None).expect("lossless lockstep session");
        (core.applied_directives().to_vec(), core.wedged_events())
    });

    let members: Vec<Vec<usize>> = {
        let sizes: Vec<usize> = spec
            .scenario_config()
            .member_specs()
            .iter()
            .map(Vec::len)
            .collect();
        let mut members = Vec::new();
        let mut next = 0usize;
        for n in sizes {
            members.push((next..next + n).collect());
            next += n;
        }
        members
    };
    let mut core = ControldCore::new(spec.policy(), members, exp.t_l0, total_ticks);
    let (stream, _) = listener.accept().expect("agent connects");
    let mut link = TcpLink::new(stream).expect("link");
    serve_controller(&mut core, &mut link, None).expect("lossless lockstep session");

    let (applied, wedged) = agent.join().expect("agent finished cleanly");
    let metrics = core.metrics(&link.counters());
    let directives = core.directives_log().to_vec();
    (directives, applied, core.into_policy(), wedged, metrics)
}

/// In-process reference: the canonical `Experiment::run`.
fn run_in_process(
    spec: &RunSpec,
    exp: &Experiment,
    trace: &Trace,
) -> (Vec<Directive>, HierarchicalPolicy) {
    let store = spec.store();
    let mut policy = spec.policy();
    let log = exp
        .run(
            spec.scenario_config().to_sim_config(),
            &mut policy,
            trace,
            &store,
        )
        .expect("well-formed scenario");
    (log.directives, policy)
}

fn assert_golden(family: Family) {
    let spec = RunSpec::defaults(family);
    let (exp, trace) = spec.experiment_and_trace();

    let (reference, ref_policy) = run_in_process(&spec, &exp, &trace);
    let (networked, applied, net_policy, wedged, metrics) = run_distributed(&spec, &exp, &trace);

    assert_eq!(
        reference.len(),
        networked.len(),
        "directive counts must match"
    );
    assert_eq!(
        reference, networked,
        "directive sequences must be bit-identical across the socket"
    );
    assert_eq!(
        reference, applied,
        "the agent's reconciler must apply the exact emission sequence"
    );
    assert_eq!(
        ref_policy.tracking_error(),
        net_policy.tracking_error(),
        "tracking MAEs must be bit-identical"
    );
    assert_eq!(ref_policy.tracking_samples(), net_policy.tracking_samples());
    assert_eq!(ref_policy.online_updates(), net_policy.online_updates());

    // A lossless lockstep run has a clean transport section: every
    // frame decoded, nothing late, nothing dark-filled at a deadline.
    let t = &metrics.transport;
    assert_eq!(t.decode_errors, 0);
    assert_eq!(t.late_observations, 0);
    assert_eq!(t.lost_observation_windows, 0);
    assert_eq!(t.reconnects, 0);
    assert!(t.frames_in > 0 && t.frames_out > 0);
    assert!(t.bytes_in > 0 && t.bytes_out > 0);
    assert_eq!(wedged, 0, "no stuck actuators in these schedules");
    assert!(!reference.is_empty());
}

#[test]
fn networked_loop_is_bit_identical_closed_loop_family() {
    assert_golden(Family::ClosedLoop);
}

#[test]
fn networked_loop_is_bit_identical_faults_family() {
    assert_golden(Family::Faults);
}
