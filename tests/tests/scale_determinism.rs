//! Scale-path regression tests: the sharded window step must be
//! bit-identical at any worker count — including across the crash-restart
//! fault sequence, the hardest ordering case — and the batched arrival
//! path must charge drops and dispatcher rejections exactly like the
//! per-request event stream it replaces.

use llc_sim::{ClusterConfig, ClusterSim, ComputerConfig, PowerModel, PowerState, WindowStats};

const WINDOW_S: f64 = 30.0;
const DEMAND_S: f64 = 0.0175;

fn twelve_machine_cluster() -> ClusterSim {
    // Three heterogeneous modules of four — enough machines that eight
    // shards split unevenly (12 lanes over 8 workers = mixed chunk sizes).
    let comp = |freqs: Vec<f64>, speed: f64, boot: f64| {
        ComputerConfig::new(freqs, PowerModel::paper_default(), boot).with_speed(speed)
    };
    let module = || {
        vec![
            comp(vec![0.6e9, 1.2e9, 1.6e9], 0.8, 120.0),
            comp(vec![0.5e9, 1.0e9, 1.5e9, 2.0e9], 1.0, 120.0),
            comp(vec![0.7e9, 1.4e9], 0.7, 60.0),
            comp(vec![0.425e9, 0.85e9, 1.7e9], 0.85, 120.0),
        ]
    };
    let mut sim = ClusterSim::new(ClusterConfig {
        modules: vec![module(), module(), module()],
    });
    for i in 0..sim.num_computers() {
        sim.force_on(i);
    }
    sim.set_module_weights(&[0.5, 0.3, 0.2]).unwrap();
    for m in 0..3 {
        sim.set_computer_weights(m, &[0.3, 0.4, 0.1, 0.2]).unwrap();
    }
    sim
}

/// Everything an observer could read from the plant, window by window.
#[derive(Debug, PartialEq)]
struct Observed {
    computer_stats: Vec<Vec<WindowStats>>,
    module_stats: Vec<Vec<WindowStats>>,
    rejections: Vec<Vec<u64>>,
    energy_bits: Vec<u64>,
    dropped: Vec<u64>,
    states: Vec<Vec<PowerState>>,
    completed: Vec<u64>,
}

/// Drive the crash-restart fault sequence through the batched windowed
/// plant: near-capacity traffic, a hard crash (work lost) plus a
/// requeueing crash, a restart through the boot dead time, a drain-and
/// -return power cycle, frequency moves and capacity drift — every
/// actuator the controllers own, exercised between sharded sweeps.
fn run_windowed(windows: usize) -> Observed {
    let mut sim = twelve_machine_cluster();
    let per_window = (0.8 * WINDOW_S * 10.2 / DEMAND_S).round() as u64;
    let mut obs = Observed {
        computer_stats: Vec::new(),
        module_stats: Vec::new(),
        rejections: Vec::new(),
        energy_bits: Vec::new(),
        dropped: Vec::new(),
        states: Vec::new(),
        completed: Vec::new(),
    };
    for w in 0..windows {
        match w {
            3 => {
                sim.set_frequency(0, 0);
                sim.set_frequency(5, 1);
            }
            5 => {
                sim.crash(1, false); // work lost
                sim.crash(5, true); // work requeued through the module router
            }
            6 => sim.restart(1),
            8 => sim.power_off(2), // drains, then off
            10 => {
                sim.power_on(2);
                sim.set_service_scale(3, 0.5);
            }
            12 => {
                sim.set_module_weights(&[0.2, 0.3, 0.5]).unwrap();
                sim.set_computer_weights(0, &[0.5, 0.0, 0.25, 0.25])
                    .unwrap();
            }
            _ => {}
        }
        let t0 = w as f64 * WINDOW_S;
        sim.inject_batch(t0, WINDOW_S, per_window, DEMAND_S)
            .unwrap();
        sim.step_window(t0 + WINDOW_S).unwrap();
        obs.computer_stats.push(sim.drain_computer_stats());
        obs.module_stats.push(sim.drain_module_stats());
        obs.rejections.push(sim.drain_dispatch_rejections());
        obs.energy_bits.push(sim.total_energy().to_bits());
        obs.dropped.push(sim.dropped());
        obs.states.push(
            (0..sim.num_computers())
                .map(|i| sim.computer(i).state())
                .collect(),
        );
    }
    obs.completed = (0..sim.num_computers())
        .map(|i| sim.computer(i).completed())
        .collect();
    obs
}

/// The worker-count override is process-global, so all shard arms run
/// sequentially inside this one test — never split them across #[test]s
/// that cargo would run concurrently.
#[test]
fn sharded_step_bit_identical_at_1_2_and_8_shards_under_crash_restart() {
    let serial = llc_par::with_threads(1, || run_windowed(16));
    let two = llc_par::with_threads(2, || run_windowed(16));
    let eight = llc_par::with_threads(8, || run_windowed(16));
    assert!(
        serial.dropped.last().copied().unwrap_or(0) > 0,
        "scenario must actually lose work to exercise drop ordering"
    );
    assert!(
        serial.rejections.iter().flatten().any(|&r| r > 0),
        "scenario must exercise dispatcher rejections"
    );
    assert_eq!(serial, two, "2 shards diverged from serial");
    assert_eq!(serial, eight, "8 shards diverged from serial");
}

#[test]
fn batched_drops_match_per_request_stream_with_dead_member() {
    // One module, two machines at 50/50, the second crashed: the router
    // keeps offering it every other request. The batched path must
    // charge the identical drop total, module drop count and per-machine
    // dispatcher rejections as the per-request stream.
    let build = || {
        let comp = || ComputerConfig::new(vec![1.0e9], PowerModel::paper_default(), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig {
            modules: vec![vec![comp(), comp()]],
        });
        sim.force_on(0);
        sim.force_on(1);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[0.5, 0.5]).unwrap();
        sim.run_until(1.0).unwrap();
        sim.crash(1, false);
        sim
    };
    let count = 500u64;

    let mut per_req = build();
    let spacing = WINDOW_S / count as f64;
    for k in 0..count {
        per_req
            .schedule_arrival(1.0 + k as f64 * spacing, DEMAND_S)
            .unwrap();
    }
    per_req.run_until(1.0 + WINDOW_S).unwrap();

    let mut batched = build();
    batched
        .inject_batch(1.0, WINDOW_S, count, DEMAND_S)
        .unwrap();
    batched.step_window(1.0 + WINDOW_S).unwrap();

    assert_eq!(per_req.dropped(), 250);
    assert_eq!(batched.dropped(), per_req.dropped());
    assert_eq!(
        batched.drain_dispatch_rejections(),
        per_req.drain_dispatch_rejections()
    );
    let (mb, mp) = (batched.drain_module_stats(), per_req.drain_module_stats());
    assert_eq!(mb[0].arrivals, mp[0].arrivals);
    assert_eq!(mb[0].dropped, mp[0].dropped);
    // The surviving machine saw the same admitted load either way.
    let (cb, cp) = (
        batched.drain_computer_stats(),
        per_req.drain_computer_stats(),
    );
    assert_eq!(cb[0].arrivals, cp[0].arrivals);
    assert_eq!(cb[0].completions, cp[0].completions);
}

#[test]
fn single_member_batched_window_is_bit_identical_to_per_request() {
    // With one member per router the dispatch interleave vanishes, so
    // batched and per-request runs see identical arrival instants —
    // responses, demands and energy must match to the last bit.
    let build = || {
        let mut sim = ClusterSim::new(ClusterConfig {
            modules: vec![vec![ComputerConfig::new(
                vec![0.5e9, 1.0e9],
                PowerModel::paper_default(),
                0.0,
            )]],
        });
        sim.force_on(0);
        sim.set_module_weights(&[1.0]).unwrap();
        sim.set_computer_weights(0, &[1.0]).unwrap();
        sim
    };
    let count = 1200u64; // ~0.7 utilization: real queueing inside windows

    let mut per_req = build();
    for w in 0..4u64 {
        let t0 = w as f64 * WINDOW_S;
        let spacing = WINDOW_S / count as f64;
        for k in 0..count {
            per_req
                .schedule_arrival(t0 + k as f64 * spacing, DEMAND_S)
                .unwrap();
        }
        per_req.run_until(t0 + WINDOW_S).unwrap();
    }
    let mut batched = build();
    for w in 0..4u64 {
        let t0 = w as f64 * WINDOW_S;
        batched.inject_batch(t0, WINDOW_S, count, DEMAND_S).unwrap();
        batched.step_window(t0 + WINDOW_S).unwrap();
    }

    assert_eq!(per_req.dropped(), batched.dropped());
    assert_eq!(
        per_req.total_energy().to_bits(),
        batched.total_energy().to_bits(),
        "energy bit-identical"
    );
    let (sp, sb) = (
        per_req.drain_computer_stats(),
        batched.drain_computer_stats(),
    );
    assert_eq!(sp, sb, "window stats bit-identical");
    assert!(sp[0].completions > 0);
}
