//! Churn tolerance end to end through the experiment driver: scheduled
//! crashes, blackouts and wedged actuators hit the plant while the
//! watchdog'd hierarchy plans around them. These runs execute with debug
//! assertions on, so they also exercise the membership invariants
//! asserted inside `HierarchicalPolicy::decide` (live γ shares sum to
//! one, no directive ever targets a dead member).

use llc_cluster::{
    single_module, Experiment, FaultToleranceConfig, HierarchicalPolicy, PolicyBuilder,
};
use llc_core::OnlineConfig;
use llc_workload::{fault_scenarios, FaultEvent, FaultKind, FaultPlan, Trace, VirtualStore};

fn capacity(scenario: &llc_cluster::ScenarioConfig) -> f64 {
    scenario.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum()
}

fn tolerant_policy(scenario: &llc_cluster::ScenarioConfig) -> HierarchicalPolicy {
    PolicyBuilder::new(scenario.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .build()
}

/// The watchdog sees a crash, excludes the member, and re-admits it
/// after the restart — and the tracking books stay finite through the
/// whole churn.
#[test]
fn crash_and_restart_death_and_rejoin() {
    let scenario = single_module(4).with_coarse_learning().with_hash_maps();
    let rate = 0.6 * capacity(&scenario);
    let trace = Trace::new(30.0, vec![rate * 30.0; 60]).unwrap();
    let store = VirtualStore::paper_default(11);
    let mut policy = tolerant_policy(&scenario);
    let experiment = Experiment {
        faults: Some(FaultPlan::new(vec![
            FaultEvent {
                tick: 24,
                computer: 2,
                kind: FaultKind::Crash { requeue: true },
            },
            FaultEvent {
                tick: 36,
                computer: 2,
                kind: FaultKind::Restart,
            },
        ])),
        ..Experiment::paper_default(11)
    };
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    assert_eq!(policy.member_deaths(), 1);
    assert_eq!(policy.member_recoveries(), 1);
    assert!(!policy.member_dead(2), "rejoined by the end of the run");
    let mae = policy.tracking_error().expect("outcomes were derived");
    assert!(mae.is_finite(), "tracking error poisoned: {mae}");
    // The rejoined member serves again: it completes work after boot.
    let served_late = log
        .ticks
        .iter()
        .skip(44)
        .any(|t| t.queues[2] > 0 || t.active_flags[2]);
    assert!(served_late, "member 2 never came back into service");
}

/// Blacking out most of the module pushes the healthy-telemetry count
/// below the quorum: the L1 must fall back to safe mode (every live
/// member on, uniform split) instead of optimizing over blank windows.
#[test]
fn quorum_loss_triggers_safe_mode_and_clears() {
    let scenario = single_module(4).with_coarse_learning().with_hash_maps();
    let rate = 0.5 * capacity(&scenario);
    let trace = Trace::new(30.0, vec![rate * 30.0; 50]).unwrap();
    let store = VirtualStore::paper_default(13);
    let mut policy = tolerant_policy(&scenario);
    // Three of four machines go dark for 8 ticks (under the watchdog's
    // 3-window death threshold they *do* get declared dead — the healthy
    // fraction of the shrinking live set collapses either way).
    let mut events = Vec::new();
    for c in 0..3 {
        events.push(FaultEvent {
            tick: 20,
            computer: c,
            kind: FaultKind::BlackoutStart,
        });
        events.push(FaultEvent {
            tick: 28,
            computer: c,
            kind: FaultKind::BlackoutEnd,
        });
    }
    let experiment = Experiment {
        faults: Some(FaultPlan::new(events)),
        ..Experiment::paper_default(13)
    };
    let log = experiment
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    assert!(
        policy.safe_mode_periods() >= 1,
        "quorum loss never tripped safe mode"
    );
    // Everything recovers: members rejoin and the module keeps serving.
    assert_eq!(policy.member_deaths(), policy.member_recoveries());
    let s = log.summary();
    assert!(
        s.total_completions as f64 > 0.9 * s.total_arrivals as f64,
        "completed {} of {}",
        s.total_completions,
        s.total_arrivals
    );
}

/// Every canonical fault scenario runs to completion under the tolerant
/// hierarchy with the membership debug-asserts armed, finite tracking,
/// and every death matched by a rejoin (no member is lost forever).
#[test]
fn canonical_scenarios_survive_with_invariants_armed() {
    let scenario = single_module(4).with_coarse_learning().with_hash_maps();
    let cap = capacity(&scenario);
    // Short horizon to keep the debug-profile run fast — but long enough
    // (80 ticks) that every schedule finishes in-run: the rolling
    // blackout's last machine must get its lights back before the end,
    // or it can never rejoin.
    for fs in &fault_scenarios(0x7E57, 20, 120.0, cap, 4) {
        let mut policy = tolerant_policy(&scenario);
        let experiment = Experiment {
            faults: Some(fs.plan.clone()),
            ..Experiment::paper_default(17)
        };
        let log = experiment
            .run(
                scenario.to_sim_config(),
                &mut policy,
                &fs.trace,
                &store_for(fs.name),
            )
            .unwrap();
        let mae = policy.tracking_error().unwrap_or(0.0);
        assert!(mae.is_finite(), "{}: tracking poisoned ({mae})", fs.name);
        assert_eq!(
            policy.member_deaths(),
            policy.member_recoveries(),
            "{}: a member was never re-admitted",
            fs.name
        );
        assert!(
            log.summary().total_completions > 0,
            "{}: nothing served",
            fs.name
        );
    }
}

fn store_for(name: &str) -> VirtualStore {
    // Distinct stores per scenario keep the request streams independent.
    VirtualStore::paper_default(name.len() as u64)
}

/// The fault-tolerant arm must strictly beat the fault-blind closed loop
/// on tracking MAE when a member crashes — the bench gate's core claim,
/// pinned here at test scale.
#[test]
fn tolerant_tracks_better_than_blind_through_a_crash() {
    let scenario = single_module(4).with_coarse_learning().with_hash_maps();
    let rate = 0.7 * capacity(&scenario);
    let trace = Trace::new(30.0, vec![rate * 30.0; 60]).unwrap();
    let plan = FaultPlan::new(vec![
        FaultEvent {
            tick: 24,
            computer: 1,
            kind: FaultKind::Crash { requeue: false },
        },
        FaultEvent {
            tick: 40,
            computer: 1,
            kind: FaultKind::Restart,
        },
    ]);
    let mut maes = Vec::new();
    for tolerant in [false, true] {
        let mut builder = PolicyBuilder::new(scenario.clone()).closed_loop(OnlineConfig::default());
        if tolerant {
            builder = builder.fault_tolerance(FaultToleranceConfig::default());
        }
        let mut policy = builder.build();
        let experiment = Experiment {
            faults: Some(plan.clone()),
            ..Experiment::paper_default(19)
        };
        let store = VirtualStore::paper_default(19);
        experiment
            .run(scenario.to_sim_config(), &mut policy, &trace, &store)
            .unwrap();
        maes.push(policy.tracking_error().expect("outcomes were derived"));
    }
    assert!(
        maes[1] < maes[0],
        "tolerant MAE {:.3} must beat blind MAE {:.3}",
        maes[1],
        maes[0]
    );
}
