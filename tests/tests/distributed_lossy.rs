//! The distributed loop under a lossy link, driven deterministically:
//! both cores single-threaded over in-memory pipes with tick-scoped
//! frame drops and delays injected at the transport seam (encoded
//! bytes), no wall clock anywhere.
//!
//! The central claim: dropping a module's observation frames is
//! *observationally equivalent* to a telemetry blackout of all its
//! members — the controller dark-fills the module either way, so the
//! watchdog's death / recovery / safe-mode counters must match an
//! in-process `Experiment` run with an equivalent `FaultPlan`. Losing
//! directives, by contrast, degrades only actuation: the reconciler
//! applies late ones in epoch order, supersedes stale ones, and never
//! actuates a duplicate.

use llc_cluster::{
    single_module, Experiment, FaultToleranceConfig, HierarchicalPolicy, PolicyBuilder,
    ScenarioConfig,
};
use llc_core::OnlineConfig;
use llc_net::{
    decode_directive, encode_directive, encode_heartbeat, encode_observation, AgentCore,
    ControldCore, FrameKind, FrameTransport, Impairment, LossyLink, PipeLink,
};
use llc_workload::{fault_scenarios, FaultEvent, FaultKind, FaultPlan, Trace, VirtualStore};

const MEMBERS: usize = 4;
const BUCKETS: usize = 40; // × 120 s / 30 s = 160 ticks

/// Observation frames vanish for these ticks (module dark at the
/// controller).
const DROP_OBS: (u64, u64) = (24, 36);
/// Observation frames are held 2 ticks (arrive stale → dropped late →
/// module dark at the controller, same as a drop).
const DELAY_OBS: (u64, u64) = (80, 86);
/// Directive frames vanish (actuation gap; plant coasts).
const DROP_DIR: (u64, u64) = (120, 124);
/// Directive frames from this single L1 tick (132) are held 5 ticks, so
/// they land *after* the next L1 round (tick 136) has been applied.
/// Split-weight directives are emitted unconditionally every L1 tick,
/// so the stale tick-132 split must be superseded — and nothing may be
/// double-applied.
const DELAY_DIR: (u64, u64) = (132, 133);
const DELAY_DIR_TICKS: u64 = 5;

fn scenario() -> ScenarioConfig {
    let mut sc = single_module(MEMBERS)
        .with_coarse_learning()
        .with_hash_maps();
    // Keep every machine powered: the equivalence argument wants the
    // watchdog driven purely by telemetry streaks, not by activation
    // decisions diverging between the two runs.
    sc.l1.min_active = MEMBERS;
    sc
}

fn policy(sc: &ScenarioConfig) -> HierarchicalPolicy {
    PolicyBuilder::new(sc.clone())
        .closed_loop(OnlineConfig::default())
        .fault_tolerance(FaultToleranceConfig::default())
        .build()
}

fn workload(sc: &ScenarioConfig) -> Trace {
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    fault_scenarios(0xFA11, BUCKETS, 120.0, capacity, MEMBERS)
        .swap_remove(0)
        .trace
}

/// Drive agent and controller cores to completion over lossy pipes,
/// single-threaded: per tick, the agent sends, the controller drains
/// whatever the link delivered and decides at its (virtual) deadline,
/// the agent drains and commits. Returns the finished cores' spoils.
#[allow(clippy::type_complexity)]
fn run_lossy(
    rules_agent_side: Vec<Impairment>,
    rules_ctrl_side: Vec<Impairment>,
) -> (
    HierarchicalPolicy,
    llc_cluster::TransportMetrics,
    llc_net::ReconcileReport,
    u64,
    u32,
) {
    let sc = scenario();
    let trace = workload(&sc);
    let exp = Experiment::paper_default(5); // no plant faults: the *link* is the fault
    let store = VirtualStore::paper_default(5);
    let mut agent =
        AgentCore::new(sc.to_sim_config(), &exp, &trace, &store).expect("well-formed plant");
    let total_ticks = agent.total_ticks();
    let mut ctrl = ControldCore::new(policy(&sc), agent.members().to_vec(), exp.t_l0, total_ticks);

    let (ctrl_pipe, agent_pipe) = PipeLink::pair();
    let mut ctrl_link = LossyLink::new(ctrl_pipe, rules_ctrl_side);
    let mut agent_link = LossyLink::new(agent_pipe, rules_agent_side);

    for tick in 0..total_ticks {
        agent_link.set_tick(tick).expect("pipe send");
        ctrl_link.set_tick(tick).expect("pipe send");

        for observation in agent.observations() {
            agent_link
                .send(FrameKind::Observation, encode_observation(&observation))
                .expect("pipe send");
        }
        agent_link
            .send(FrameKind::Heartbeat, encode_heartbeat(&agent.heartbeat()))
            .expect("pipe send");

        // The controller's window deadline: drain whatever arrived,
        // then decide regardless — missing modules are dark-filled.
        while let Some(frame) = ctrl_link.recv(None).expect("pipe recv") {
            let _ = ctrl.handle_frame(&frame);
        }
        let (_report, directives) = ctrl.decide_next();
        for d in &directives {
            ctrl_link
                .send(FrameKind::Directive, encode_directive(d))
                .expect("pipe send");
        }
        ctrl_link
            .send(
                FrameKind::Heartbeat,
                encode_heartbeat(&ctrl.commit_heartbeat(tick)),
            )
            .expect("pipe send");

        // The agent's deadline: stage whatever directives made it,
        // commit the window.
        while let Some(frame) = agent_link.recv(None).expect("pipe recv") {
            if frame.kind == FrameKind::Directive {
                agent.stage(decode_directive(&frame.payload).expect("codec round trip"));
            }
        }
        agent.commit_window().expect("well-formed run");
    }
    assert!(agent.finished() && ctrl.finished());

    let transport = ctrl
        .metrics(&ctrl_link.inner().counters())
        .transport
        .clone();
    let reconcile = agent.reconcile_report();
    let wedged = agent.wedged_events();
    let heartbeat_wedged = agent.heartbeat().wedged;
    (
        ctrl.into_policy(),
        transport,
        reconcile,
        wedged,
        heartbeat_wedged,
    )
}

/// The in-process reference: same plant, same workload, with the
/// observation outages expressed as a `FaultPlan` blackout of every
/// member over the same tick ranges.
fn run_blackout_reference() -> HierarchicalPolicy {
    let sc = scenario();
    let trace = workload(&sc);
    let mut events = Vec::new();
    for &(from, to) in &[DROP_OBS, DELAY_OBS] {
        for computer in 0..MEMBERS {
            events.push(FaultEvent {
                tick: from,
                computer,
                kind: FaultKind::BlackoutStart,
            });
            events.push(FaultEvent {
                tick: to,
                computer,
                kind: FaultKind::BlackoutEnd,
            });
        }
    }
    let exp = Experiment {
        faults: Some(FaultPlan::new(events)),
        ..Experiment::paper_default(5)
    };
    let store = VirtualStore::paper_default(5);
    let mut policy = policy(&sc);
    exp.run(sc.to_sim_config(), &mut policy, &trace, &store)
        .expect("well-formed scenario");
    policy
}

#[test]
fn lossy_link_matches_equivalent_blackout_and_recovers() {
    let agent_rules = vec![
        Impairment::drop(FrameKind::Observation, DROP_OBS.0, DROP_OBS.1),
        Impairment::delay(FrameKind::Observation, DELAY_OBS.0, DELAY_OBS.1, 2),
    ];
    let ctrl_rules = vec![
        Impairment::drop(FrameKind::Directive, DROP_DIR.0, DROP_DIR.1),
        Impairment::delay(
            FrameKind::Directive,
            DELAY_DIR.0,
            DELAY_DIR.1,
            DELAY_DIR_TICKS,
        ),
    ];
    let (net_policy, transport, reconcile, wedged, hb_wedged) = run_lossy(agent_rules, ctrl_rules);
    let ref_policy = run_blackout_reference();

    // Observational equivalence: frame loss at the transport seam and a
    // plant-side telemetry blackout drive the watchdog identically.
    assert!(net_policy.member_deaths() > 0, "outage must kill members");
    assert_eq!(
        net_policy.member_deaths(),
        ref_policy.member_deaths(),
        "deaths must match the equivalent blackout"
    );
    assert_eq!(
        net_policy.member_recoveries(),
        ref_policy.member_recoveries(),
        "recoveries must match the equivalent blackout"
    );
    assert_eq!(
        net_policy.safe_mode_periods(),
        ref_policy.safe_mode_periods(),
        "safe-mode periods must match the equivalent blackout"
    );
    assert!(
        net_policy.safe_mode_periods() > 0,
        "whole-module outage must break quorum"
    );

    // Transport accounting: every dropped-or-stale observation window
    // is visible in the metrics, with nothing unexplained.
    let obs_outage = (DROP_OBS.1 - DROP_OBS.0) + (DELAY_OBS.1 - DELAY_OBS.0);
    assert_eq!(
        transport.lost_observation_windows, obs_outage,
        "one lost module-window per impaired tick"
    );
    assert_eq!(
        transport.late_observations,
        DELAY_OBS.1 - DELAY_OBS.0,
        "each delayed observation arrives stale and is counted late"
    );
    assert_eq!(transport.decode_errors, 0, "loss, not corruption");

    // Directive loss degrades actuation without double-applying: late
    // directives overtaken by newer epochs are superseded, and no
    // directive is ever actuated twice.
    assert!(
        reconcile.superseded > 0,
        "delayed directives must be overtaken"
    );
    assert_eq!(reconcile.duplicates, 0, "no duplicate actuation");
    assert!(reconcile.applied > 0);
    assert_eq!(wedged, 0, "no stuck actuators in this run");
    assert_eq!(hb_wedged, 0);
}

/// A wedged actuator is plant-side, not link-side: the stuck-actuator
/// fault schedule must surface through the agent's frequency read-back
/// and reach the controller in the heartbeat's wedged count.
#[test]
fn wedged_actuator_is_detected_and_reported() {
    let sc = scenario();
    let capacity: f64 = sc.member_specs()[0]
        .iter()
        .map(|m| m.speed / m.c_prior)
        .sum();
    let stuck = fault_scenarios(0xFA11, BUCKETS, 120.0, capacity, MEMBERS)
        .into_iter()
        .find(|s| s.name == "stuck-actuator")
        .expect("scenario exists");
    let exp = Experiment {
        faults: Some(stuck.plan),
        ..Experiment::paper_default(5)
    };
    let store = VirtualStore::paper_default(5);
    let mut agent =
        AgentCore::new(sc.to_sim_config(), &exp, &stuck.trace, &store).expect("well-formed plant");
    let total_ticks = agent.total_ticks();
    let mut ctrl = ControldCore::new(policy(&sc), agent.members().to_vec(), exp.t_l0, total_ticks);

    let (mut ctrl_link, mut agent_link) = PipeLink::pair();
    let mut saw_wedged_member = false;
    for _tick in 0..total_ticks {
        for observation in agent.observations() {
            agent_link
                .send(FrameKind::Observation, encode_observation(&observation))
                .expect("pipe send");
        }
        agent_link
            .send(FrameKind::Heartbeat, encode_heartbeat(&agent.heartbeat()))
            .expect("pipe send");
        while let Some(frame) = ctrl_link.recv(None).expect("pipe recv") {
            ctrl.handle_frame(&frame).expect("lossless frames decode");
        }
        let (_report, directives) = ctrl.decide_next();
        for d in &directives {
            ctrl_link
                .send(FrameKind::Directive, encode_directive(d))
                .expect("pipe send");
        }
        while let Some(frame) = agent_link.recv(None).expect("pipe recv") {
            if frame.kind == FrameKind::Directive {
                agent.stage(decode_directive(&frame.payload).expect("codec round trip"));
            }
        }
        agent.commit_window().expect("well-formed run");
        saw_wedged_member |= agent.wedged_members().iter().any(|&w| w);
    }

    assert!(
        agent.wedged_events() > 0,
        "stuck actuator must fail the frequency read-back"
    );
    assert!(
        saw_wedged_member,
        "the wedged computer is identified while the actuator is stuck"
    );
    // One more heartbeat would carry it upstream; the controller's
    // transport metrics expose the last report it saw.
    agent_link
        .send(FrameKind::Heartbeat, encode_heartbeat(&agent.heartbeat()))
        .expect("pipe send");
    while let Some(frame) = ctrl_link.recv(None).expect("pipe recv") {
        ctrl.handle_frame(&frame).expect("lossless frames decode");
    }
    let m = ctrl.metrics(&ctrl_link.counters());
    assert!(
        m.transport.wedged_reports > 0,
        "wedged count must reach the controller's metrics surface"
    );
    assert_eq!(m.transport.wedged_reports, agent.wedged_events());
}
