//! The paper's `H(x) ≤ 0` operating constraints include "the overall
//! energy budget for the cluster": with a hard power budget the L1 must
//! refuse configurations whose expected draw exceeds the cap, trading
//! response time for power.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{Trace, VirtualStore};

const TICKS: usize = 60;
const DURATION: f64 = TICKS as f64 * 30.0;

fn run_with_budget(budget: Option<f64>) -> (f64, f64, f64) {
    let mut scenario = single_module(4).with_coarse_learning();
    scenario.l1.power_budget = budget;
    let mut policy = HierarchicalPolicy::build(&scenario);
    // Load that would comfortably use 3-4 machines unconstrained.
    let trace = Trace::new(30.0, vec![120.0 * 30.0; TICKS]).unwrap();
    let store = VirtualStore::paper_default(41);
    let log = Experiment::paper_default(41)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    let s = log.summary();
    let mean_power = s.total_energy / DURATION;
    (s.total_energy, s.mean_response, mean_power)
}

#[test]
fn power_budget_caps_mean_power() {
    let (unconstrained_energy, unconstrained_resp, unconstrained_power) = run_with_budget(None);
    // A cap well below the unconstrained draw. Note: three machines at
    // *low* frequency may satisfy it — the budget binds power, not
    // machine count.
    let budget = 3.6;
    assert!(
        unconstrained_power > budget,
        "precondition: unconstrained power {unconstrained_power:.2} must exceed the cap"
    );
    let (capped_energy, capped_resp, capped_power) = run_with_budget(Some(budget));

    // Model-vs-plant slack: the g-map estimates power at the nominal
    // forecast; the measured draw may exceed the cap transiently.
    assert!(
        capped_power <= budget * 1.25,
        "measured mean power {capped_power:.2} should track the budget {budget}"
    );
    assert!(
        capped_energy < unconstrained_energy,
        "capped energy {capped_energy:.0} must undercut unconstrained {unconstrained_energy:.0}"
    );
    // The price of the cap is (weakly) worse response under this load.
    assert!(
        capped_resp >= unconstrained_resp * 0.9,
        "capped response {capped_resp:.2} should not markedly beat unconstrained {unconstrained_resp:.2}"
    );
}

#[test]
fn generous_budget_changes_nothing() {
    let (e_none, r_none, p_none) = run_with_budget(None);
    let (e_big, r_big, p_big) = run_with_budget(Some(1e9));
    assert!((e_none - e_big).abs() < 1e-6);
    assert!((r_none - r_big).abs() < 1e-9);
    assert!((p_none - p_big).abs() < 1e-9);
}
