//! Run-to-run determinism: the whole stack — workload generation, offline
//! learning, controllers, event simulation — must be bit-reproducible for
//! a fixed seed.

use llc_cluster::{single_module, Experiment, HierarchicalPolicy};
use llc_workload::{synthetic_paper_workload, Trace, VirtualStore};

#[allow(clippy::type_complexity)] // (completions, responses, energy, active history)
fn run_once(seed: u64) -> (Vec<u64>, Vec<Option<f64>>, f64, Vec<(u64, usize)>) {
    let scenario = single_module(4).with_coarse_learning();
    let mut policy = HierarchicalPolicy::build(&scenario);
    let trace = synthetic_paper_workload(seed).slice(100, 160);
    let store = VirtualStore::paper_default(seed);
    let log = Experiment::paper_default(seed)
        .run(scenario.to_sim_config(), &mut policy, &trace, &store)
        .unwrap();
    (
        log.ticks.iter().map(|t| t.completions).collect(),
        log.ticks.iter().map(|t| t.mean_response).collect(),
        log.ticks.last().unwrap().energy,
        policy.active_history().to_vec(),
    )
}

#[test]
fn same_seed_reproduces_exactly() {
    let a = run_once(31);
    let b = run_once(31);
    assert_eq!(a.0, b.0, "completions differ between identical runs");
    assert_eq!(a.1, b.1, "responses differ between identical runs");
    assert_eq!(a.2, b.2, "energy differs between identical runs");
    assert_eq!(
        a.3, b.3,
        "controller decisions differ between identical runs"
    );
}

#[test]
fn different_seed_changes_the_run() {
    let a = run_once(31);
    let c = run_once(32);
    assert_ne!(
        (a.0, a.2),
        (c.0, c.2),
        "distinct seeds should produce distinct trajectories"
    );
}

#[test]
fn workload_generators_are_seed_deterministic() {
    assert_eq!(synthetic_paper_workload(5), synthetic_paper_workload(5));
    let t = Trace::new(30.0, vec![1.0, 2.0]).unwrap();
    assert_eq!(t, Trace::from_csv(&t.to_csv()).unwrap());
}
