//! Anchor library for the integration-test package; tests live in `tests/`.
